(* Tests for the mixed-consistency DSM runtime: memory operations,
   synchronization operations, propagation modes, and the recorded
   histories they produce. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Network = Mc_net.Network
module Op = Mc_history.Op
module History = Mc_history.History

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(procs = 3) ?(propagation = Config.Lazy) ?(record = true)
    ?(await_label = Op.Causal) ?latency () =
  let engine = Engine.create () in
  let cfg =
    { (Config.default ~procs) with propagation; record; await_label }
  in
  let rt = Runtime.create engine ?latency cfg in
  (engine, rt)

let run = Runtime.run

let test_read_own_write () =
  let _, rt = make () in
  let seen = ref (-1) in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "x" 7;
      seen := Runtime.read p "x");
  ignore (run rt);
  check_int "own write visible" 7 !seen

let test_update_propagation () =
  let _, rt = make () in
  let seen = ref (-1) in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write p "x" 5);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "x" 5;
      seen := Runtime.read p "x");
  ignore (run rt);
  check_int "propagated" 5 !seen

let test_initial_value_zero () =
  let _, rt = make () in
  let v = ref (-1) in
  Runtime.spawn_process rt 1 (fun p -> v := Runtime.read p "fresh");
  ignore (run rt);
  check_int "initial value" 0 !v

let test_pram_vs_causal_views () =
  (* w(y) then w(x) by p0; p2 receives x's update only through p1's
     forwarded dependency... simpler: force reordering with a link pause:
     p0 -> p2 paused, p0 -> p1 fast, p1 relays by writing z after
     awaiting x. p2 awaits z (from p1), then reads y: causal read must
     block/see it; PRAM read may return 0. Here we check the two views
     directly through read labels after resuming the link. *)
  let engine, rt = make ~procs:3 () in
  let net = Runtime.network rt in
  let pram_y = ref (-1) and causal_y = ref (-1) in
  Network.pause_link net ~src:0 ~dst:2;
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "y" 1;
      Runtime.write p "x" 2);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "x" 2;
      Runtime.write p "z" 3);
  Runtime.spawn_process rt 2 (fun p ->
      (* z arrives from p1, but p0's updates are still paused: the causal
         view buffers z (its dependencies are missing) *)
      Runtime.compute p 500.;
      pram_y := Runtime.read p ~label:Op.PRAM "z";
      causal_y := Runtime.read p ~label:Op.Causal "z";
      Runtime.compute p 1000.);
  Engine.schedule engine ~delay:1200. (fun () ->
      Network.resume_link net ~src:0 ~dst:2);
  ignore (run rt);
  check_int "pram view applied z immediately" 3 !pram_y;
  check_int "causal view still buffers z" 0 !causal_y

let test_write_lock_mutual_exclusion () =
  let _, rt = make ~procs:3 () in
  let active = ref 0 and max_active = ref 0 and entries = ref 0 in
  for i = 0 to 2 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.write_lock p "m";
        incr active;
        incr entries;
        max_active := max !max_active !active;
        Runtime.compute p 50.;
        decr active;
        Runtime.write_unlock p "m")
  done;
  ignore (run rt);
  check_int "everyone entered" 3 !entries;
  check_int "never concurrent" 1 !max_active

let test_read_locks_shared () =
  let _, rt = make ~procs:3 () in
  let active = ref 0 and max_active = ref 0 in
  for i = 0 to 2 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.read_lock p "m";
        incr active;
        max_active := max !max_active !active;
        Runtime.compute p 200.;
        decr active;
        Runtime.read_unlock p "m")
  done;
  ignore (run rt);
  check "readers overlap" true (!max_active > 1)

let test_lock_transfers_updates () =
  (* Corollary-1 pattern: the value written inside the critical section is
     visible to the next holder, in every propagation mode *)
  List.iter
    (fun propagation ->
      let _, rt = make ~procs:2 ~propagation () in
      let seen = ref (-1) in
      Runtime.spawn_process rt 0 (fun p ->
          Runtime.write_lock p "m";
          Runtime.write p "x" 33;
          Runtime.write_unlock p "m");
      Runtime.spawn_process rt 1 (fun p ->
          Runtime.compute p 500.;
          (* ensure p0 goes first *)
          Runtime.write_lock p "m";
          seen := Runtime.read p "x";
          Runtime.write_unlock p "m");
      ignore (run rt);
      check_int
        (Printf.sprintf "visible under %s" (Config.propagation_to_string propagation))
        33 !seen)
    [ Config.Eager; Config.Lazy; Config.Demand ]

let test_barrier_separates_phases () =
  let _, rt = make ~procs:4 () in
  let ok = ref true in
  for i = 0 to 3 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.write p (Printf.sprintf "a:%d" i) (100 + i);
        Runtime.barrier p;
        for j = 0 to 3 do
          if Runtime.read p ~label:Op.PRAM (Printf.sprintf "a:%d" j) <> 100 + j
          then ok := false
        done;
        Runtime.barrier p)
  done;
  ignore (run rt);
  check "all pre-barrier writes visible after the barrier" true !ok

let test_barrier_multiple_episodes () =
  let _, rt = make ~procs:2 () in
  let trace = ref [] in
  for i = 0 to 1 do
    Runtime.spawn_process rt i (fun p ->
        for round = 1 to 3 do
          Runtime.write p (Printf.sprintf "r:%d:%d" round i) round;
          Runtime.barrier p;
          trace := (round, i) :: !trace
        done)
  done;
  ignore (run rt);
  check_int "six phase completions" 6 (List.length !trace);
  (* no process may be at round r+1 before both finished round r: since the
     trace is appended at barrier exit, rounds must be non-interleaved *)
  let rounds = List.rev_map fst !trace in
  let sorted = List.sort compare rounds in
  Alcotest.(check (list int)) "rounds complete in order" sorted rounds

let test_await_pram_label () =
  let _, rt = make ~procs:2 ~await_label:Op.PRAM () in
  let seen = ref false in
  Runtime.spawn_process rt 0 (fun p -> Runtime.write p "flag" 1);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "flag" 1;
      seen := true);
  ignore (run rt);
  check "pram await fires" true !seen

let test_counters () =
  let _, rt = make ~procs:3 () in
  let final = ref (-1) in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.init_counter p "c" 4;
      Runtime.barrier p;
      Runtime.decrement p "c" ~amount:1;
      Runtime.await p "c" 0;
      final := Runtime.read p "c";
      Runtime.barrier p);
  for i = 1 to 2 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.barrier p;
        Runtime.decrement p "c" ~amount:1;
        Runtime.decrement p "c" ~amount:1;
        ignore (Runtime.read p "c");
        Runtime.await p "c" 0;
        Runtime.barrier p)
  done;
  ignore (run rt);
  check_int "counter drained" 0 !final

let test_recorded_history_well_formed_and_mixed () =
  let _, rt = make ~procs:3 () in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write_lock p "m";
      Runtime.write p "x" 1;
      Runtime.write_unlock p "m";
      Runtime.barrier p);
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.write_lock p "m";
      ignore (Runtime.read p "x");
      Runtime.write_unlock p "m";
      Runtime.barrier p);
  Runtime.spawn_process rt 2 (fun p ->
      ignore (Runtime.read p ~label:Op.PRAM "x");
      Runtime.barrier p;
      ignore (Runtime.read p "x"));
  ignore (run rt);
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent" true (Mc_consistency.Mixed.is_mixed_consistent h);
  check "acyclic causality" true (History.causality_is_acyclic h)

let test_stats_exposed () =
  let _, rt = make ~procs:2 () in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "x" 1;
      Runtime.barrier p);
  Runtime.spawn_process rt 1 (fun p ->
      ignore (Runtime.read p "x");
      Runtime.barrier p);
  ignore (run rt);
  let counts = Runtime.op_counts rt in
  check_int "writes counted" 1 (List.assoc "write" counts);
  check_int "reads counted" 1 (List.assoc "read" counts);
  check_int "barriers counted" 2 (List.assoc "barrier" counts);
  check "waits recorded" true (Runtime.wait_summaries rt <> []);
  check "network counted updates" true
    (Network.messages_sent (Runtime.network rt) > 0)

let test_peek_after_run () =
  let _, rt = make ~procs:2 () in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write p "x" 9;
      Runtime.barrier p);
  Runtime.spawn_process rt 1 (fun p -> Runtime.barrier p);
  ignore (run rt);
  check_int "peek at writer" 9 (Runtime.peek rt ~proc:0 "x");
  check_int "peek at other replica" 9 (Runtime.peek rt ~proc:1 "x")

let test_eager_flush_messages () =
  (* eager propagation emits flush traffic; lazy does not *)
  let count_flushes propagation =
    let _, rt = make ~procs:3 ~propagation () in
    Runtime.spawn_process rt 0 (fun p ->
        Runtime.write_lock p "m";
        Runtime.write p "x" 1;
        Runtime.write_unlock p "m");
    Runtime.spawn_process rt 1 (fun p -> ignore (Runtime.read p "x"));
    Runtime.spawn_process rt 2 (fun p -> ignore (Runtime.read p "x"));
    ignore (run rt);
    let kinds = Network.messages_by_kind (Runtime.network rt) in
    Option.value ~default:0 (List.assoc_opt "flush_request" kinds)
  in
  check "eager flushes" true (count_flushes Config.Eager > 0);
  check_int "lazy does not flush" 0 (count_flushes Config.Lazy)

let test_demand_blocks_only_written_locations () =
  let _, rt = make ~procs:2 ~propagation:Config.Demand () in
  let y_wait = ref nan and x_val = ref (-1) in
  let engine = Runtime.engine rt in
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write_lock p "m";
      Runtime.write p "x" 1;
      Runtime.compute p 300.;
      Runtime.write_unlock p "m");
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.compute p 100.;
      Runtime.write_lock p "m";
      (* y was not written in the critical section: reading it is free *)
      let t0 = Engine.now engine in
      ignore (Runtime.read p "y");
      y_wait := Engine.now engine -. t0;
      (* x was: the read may block until the update applies, but returns
         the critical-section value *)
      x_val := Runtime.read p "x";
      Runtime.write_unlock p "m");
  ignore (run rt);
  check "unwritten location read instantly" true (!y_wait < 1.0);
  check_int "written location consistent" 1 !x_val

let () =
  Alcotest.run "mc_dsm.runtime"
    [
      ( "memory",
        [
          Alcotest.test_case "read own write" `Quick test_read_own_write;
          Alcotest.test_case "update propagation" `Quick test_update_propagation;
          Alcotest.test_case "initial value" `Quick test_initial_value_zero;
          Alcotest.test_case "pram vs causal views" `Quick test_pram_vs_causal_views;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "locks",
        [
          Alcotest.test_case "write locks exclude" `Quick test_write_lock_mutual_exclusion;
          Alcotest.test_case "read locks share" `Quick test_read_locks_shared;
          Alcotest.test_case "critical-section updates transfer" `Quick
            test_lock_transfers_updates;
          Alcotest.test_case "eager flush traffic" `Quick test_eager_flush_messages;
          Alcotest.test_case "demand blocks only the write-set" `Quick
            test_demand_blocks_only_written_locations;
        ] );
      ( "barriers",
        [
          Alcotest.test_case "phases separated" `Quick test_barrier_separates_phases;
          Alcotest.test_case "multiple episodes" `Quick test_barrier_multiple_episodes;
        ] );
      ( "awaits",
        [ Alcotest.test_case "pram-labelled await" `Quick test_await_pram_label ] );
      ( "recording",
        [
          Alcotest.test_case "well-formed mixed histories" `Quick
            test_recorded_history_well_formed_and_mixed;
          Alcotest.test_case "statistics" `Quick test_stats_exposed;
          Alcotest.test_case "peek" `Quick test_peek_after_run;
        ] );
    ]
