(* End-to-end randomized tests: random programs run on the DSM runtime
   under randomized latencies, and the recorded histories are checked
   against the formal definitions. This validates the implementation
   against the model (Definition 4) and the paper's Theorem 1 /
   Corollaries 1-2 on real executions. *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module History = Mc_history.History
module Mixed = Mc_consistency.Mixed
module Causal = Mc_consistency.Causal
module Sequential = Mc_consistency.Sequential
module Commute = Mc_consistency.Commute
module Program_class = Mc_consistency.Program_class
module Rng = Mc_util.Rng

let check = Alcotest.(check bool)

let make_runtime ~seed ~procs ?propagation () =
  let engine = Engine.create () in
  let cfg =
    let base = { (Config.default ~procs) with record = true } in
    match propagation with Some p -> { base with propagation = p } | None -> base
  in
  let latency = Latency.uniform (Rng.make seed) ~lo:5. ~hi:200. in
  (engine, Runtime.create engine ~latency cfg)

(* ------------------------------------------------------------------ *)
(* Random unsynchronized programs: runtime must always produce        *)
(* well-formed, mixed-consistent histories                            *)
(* ------------------------------------------------------------------ *)

let random_plain_program rng ~procs ~ops_per_proc rt =
  let locs = [| "a"; "b"; "c" |] in
  let next_value = ref 0 in
  for i = 0 to procs - 1 do
    let plan =
      List.init ops_per_proc (fun _ ->
          let loc = Rng.pick rng locs in
          if Rng.bool rng then begin
            incr next_value;
            `Write (loc, !next_value)
          end
          else `Read (loc, if Rng.bool rng then Op.PRAM else Op.Causal))
    in
    Runtime.spawn_process rt i (fun p ->
        List.iter
          (function
            | `Write (loc, v) -> Runtime.write p loc v
            | `Read (loc, label) -> ignore (Runtime.read p ~label loc))
          plan)
  done

let test_random_runs_mixed_consistent () =
  for seed = 1 to 30 do
    let rng = Rng.make (1000 + seed) in
    let procs = 2 + Rng.int rng 3 in
    let _, rt = make_runtime ~seed ~procs () in
    random_plain_program rng ~procs ~ops_per_proc:8 rt;
    ignore (Runtime.run rt);
    let h = Runtime.history rt in
    check
      (Printf.sprintf "well-formed (seed %d)" seed)
      true (History.is_well_formed h);
    (match Mixed.failures h with
    | [] -> ()
    | fs ->
      Alcotest.failf "seed %d: %d mixed-consistency failures, first: %s" seed
        (List.length fs)
        (Format.asprintf "%a" Mixed.pp_failure (List.hd fs)));
    (* every run of this runtime is also fully causal on the causal view:
       check causal reads only (PRAM-labelled reads may legitimately be
       non-causal) *)
    check "acyclic" true (History.causality_is_acyclic h)
  done

(* with barriers inserted at aligned rounds the histories stay mixed
   consistent and barrier counts line up *)
let test_random_runs_with_barriers () =
  for seed = 1 to 15 do
    let rng = Rng.make (2000 + seed) in
    let procs = 2 + Rng.int rng 2 in
    let _, rt = make_runtime ~seed ~procs () in
    let next_value = ref 0 in
    for i = 0 to procs - 1 do
      let rounds =
        List.init 3 (fun _ ->
            List.init 3 (fun _ ->
                let loc = Rng.pick rng [| "u"; "v" |] in
                if Rng.bool rng then begin
                  incr next_value;
                  `Write (loc, !next_value)
                end
                else `Read loc))
      in
      Runtime.spawn_process rt i (fun p ->
          List.iter
            (fun round ->
              List.iter
                (function
                  | `Write (loc, v) -> Runtime.write p loc v
                  | `Read loc ->
                    ignore
                      (Runtime.read p
                         ~label:(if Rng.bool rng then Op.PRAM else Op.Causal)
                         loc))
                round;
              Runtime.barrier p)
            rounds)
    done;
    ignore (Runtime.run rt);
    let h = Runtime.history rt in
    check "well-formed" true (History.is_well_formed h);
    check "mixed consistent" true (Mixed.is_mixed_consistent h)
  done

(* ------------------------------------------------------------------ *)
(* Corollary 1 on real executions: entry-consistent random programs    *)
(* with causal reads produce sequentially consistent histories         *)
(* ------------------------------------------------------------------ *)

let test_corollary1_on_executions () =
  for seed = 1 to 12 do
    let rng = Rng.make (3000 + seed) in
    let procs = 2 in
    let _, rt = make_runtime ~seed ~procs () in
    let next_value = ref 0 in
    for i = 0 to procs - 1 do
      let sections =
        List.init 2 (fun _ ->
            let write = Rng.bool rng in
            incr next_value;
            (write, !next_value))
      in
      Runtime.spawn_process rt i (fun p ->
          List.iter
            (fun (write, v) ->
              if write then begin
                Runtime.write_lock p "guard";
                Runtime.write p "shared" v;
                ignore (Runtime.read p "shared");
                Runtime.write_unlock p "guard"
              end
              else begin
                Runtime.read_lock p "guard";
                ignore (Runtime.read p "shared");
                Runtime.read_unlock p "guard"
              end)
            sections)
    done;
    ignore (Runtime.run rt);
    let h = Runtime.history rt in
    check "entry-consistent" true (Program_class.is_entry_consistent h);
    check "causal reads" true (Causal.is_causal_history h);
    (match Sequential.is_sequentially_consistent h with
    | Sequential.Consistent -> ()
    | Sequential.Unknown -> () (* search budget exhausted: inconclusive *)
    | Sequential.Inconsistent ->
      Alcotest.failf "seed %d: entry-consistent execution not SC" seed)
  done

(* ------------------------------------------------------------------ *)
(* Corollary 2 on real executions: phase programs with PRAM reads      *)
(* ------------------------------------------------------------------ *)

let test_corollary2_on_executions () =
  for seed = 1 to 12 do
    let procs = 3 in
    let _, rt = make_runtime ~seed:(4000 + seed) ~procs () in
    (* each process owns one variable; in each phase it updates its own
       variable and reads the others' previous-phase values *)
    for i = 0 to procs - 1 do
      Runtime.spawn_process rt i (fun p ->
          for round = 1 to 2 do
            Runtime.write p (Printf.sprintf "own:%d" i) ((round * 10) + i);
            Runtime.barrier p;
            for j = 0 to procs - 1 do
              ignore (Runtime.read p ~label:Op.PRAM (Printf.sprintf "own:%d" j))
            done;
            Runtime.barrier p
          done)
    done;
    ignore (Runtime.run rt);
    let h = Runtime.history rt in
    check "PRAM-consistent program" true (Program_class.is_pram_consistent h);
    check "all PRAM reads valid" true (Mc_consistency.Pram.is_pram_history h);
    match Sequential.is_sequentially_consistent ~max_states:400_000 h with
    | Sequential.Consistent | Sequential.Unknown -> ()
    | Sequential.Inconsistent ->
      Alcotest.failf "seed %d: PRAM-consistent execution not SC" seed
  done

(* ------------------------------------------------------------------ *)
(* Theorem 1 premise checking on real executions                       *)
(* ------------------------------------------------------------------ *)

let test_theorem1_on_disjoint_writers () =
  (* every process touches only its own variable: all causally-unrelated
     pairs are on distinct locations and therefore commute *)
  let _, rt = make_runtime ~seed:77 ~procs:3 () in
  for i = 0 to 2 do
    Runtime.spawn_process rt i (fun p ->
        Runtime.write p (Printf.sprintf "w:%d" i) (i + 1);
        ignore (Runtime.read p (Printf.sprintf "w:%d" i));
        Runtime.write p (Printf.sprintf "w:%d" i) (i + 10))
  done;
  ignore (Runtime.run rt);
  let h = Runtime.history rt in
  check "premises hold" true (Commute.theorem1_holds h);
  check "hence SC" true
    (Sequential.is_sequentially_consistent h <> Sequential.Inconsistent)

(* ------------------------------------------------------------------ *)
(* Counter convergence under concurrency                               *)
(* ------------------------------------------------------------------ *)

let test_counters_converge () =
  for seed = 1 to 10 do
    let procs = 4 in
    let _, rt = make_runtime ~seed:(5000 + seed) ~procs () in
    let rng = Rng.make seed in
    let per_proc = Array.init procs (fun _ -> 1 + Rng.int rng 5) in
    let total = Array.fold_left ( + ) 0 per_proc in
    let finals = Array.make procs max_int in
    for i = 0 to procs - 1 do
      Runtime.spawn_process rt i (fun p ->
          if i = 0 then Runtime.init_counter p "c" total;
          Runtime.barrier p;
          for _ = 1 to per_proc.(i) do
            Runtime.decrement p "c" ~amount:1
          done;
          Runtime.await p "c" 0;
          finals.(i) <- Runtime.read p "c")
    done;
    ignore (Runtime.run rt);
    Array.iteri
      (fun i v -> check (Printf.sprintf "proc %d sees zero" i) true (v = 0))
      finals
  done

(* ------------------------------------------------------------------ *)
(* Propagation-mode equivalence                                        *)
(* ------------------------------------------------------------------ *)

let test_propagation_modes_agree () =
  (* the same lock-protected accumulation program yields the same final
     value in every propagation mode *)
  let run propagation =
    let _, rt = make_runtime ~seed:99 ~procs:3 ~propagation () in
    let out = ref (-1) in
    for i = 0 to 2 do
      Runtime.spawn_process rt i (fun p ->
          for _ = 1 to 3 do
            Runtime.write_lock p "m";
            let v = Runtime.read p "acc" in
            Runtime.write p "acc" (v + 1);
            Runtime.write_unlock p "m"
          done;
          Runtime.barrier p;
          if i = 0 then out := Runtime.read p "acc")
    done;
    ignore (Runtime.run rt);
    !out
  in
  List.iter
    (fun propagation ->
      Alcotest.(check int)
        (Config.propagation_to_string propagation)
        9 (run propagation))
    [ Config.Eager; Config.Lazy; Config.Demand ]

(* a complete application run checked against the formal definitions:
   the whole recorded history of a solver execution (hundreds of
   operations) is well-formed and mixed consistent, and its PRAM-phase
   program classifies under Corollary 2 *)
let test_full_solver_history_checks () =
  let problem = Mc_apps.Linear_solver.Problem.generate ~seed:5 ~n:6 in
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:3) with record = true } in
  let rt = Runtime.create engine cfg in
  let res =
    Mc_apps.Linear_solver.launch
      ~spawn:(Mc_dsm.Api.spawn rt)
      ~procs:3 ~variant:Mc_apps.Linear_solver.Barrier_pram problem
  in
  ignore (Runtime.run rt);
  ignore (Option.get !res);
  let h = Runtime.history rt in
  check "full run has substance" true (History.length h > 150);
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent" true (Mixed.is_mixed_consistent h);
  check "PRAM-consistent program (Cor. 2)" true
    (Program_class.is_pram_consistent h)

let test_full_cholesky_history_checks () =
  let m = Mc_apps.Sparse_spd.generate ~seed:3 ~n:8 ~density:0.3 in
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs:3) with record = true } in
  let rt = Runtime.create engine cfg in
  let res =
    Mc_apps.Cholesky.launch
      ~spawn:(Mc_dsm.Api.spawn rt)
      ~procs:3 ~variant:Mc_apps.Cholesky.Lock_based m
  in
  ignore (Runtime.run rt);
  ignore (Option.get !res);
  let h = Runtime.history rt in
  check "well-formed" true (History.is_well_formed h);
  check "mixed consistent" true (Mixed.is_mixed_consistent h)

(* determinism: the same seed gives the same history *)
let test_determinism () =
  let run () =
    let rng = Rng.make 4242 in
    let _, rt = make_runtime ~seed:4242 ~procs:3 () in
    random_plain_program rng ~procs:3 ~ops_per_proc:10 rt;
    ignore (Runtime.run rt);
    Array.to_list (Array.map Op.to_string (History.ops (Runtime.history rt)))
  in
  Alcotest.(check (list string)) "identical histories" (run ()) (run ())

let () =
  Alcotest.run "integration"
    [
      ( "model-conformance",
        [
          Alcotest.test_case "random runs are mixed consistent" `Slow
            test_random_runs_mixed_consistent;
          Alcotest.test_case "random runs with barriers" `Slow
            test_random_runs_with_barriers;
          Alcotest.test_case "corollary 1 on executions" `Slow
            test_corollary1_on_executions;
          Alcotest.test_case "corollary 2 on executions" `Slow
            test_corollary2_on_executions;
          Alcotest.test_case "theorem 1 premises" `Quick
            test_theorem1_on_disjoint_writers;
          Alcotest.test_case "full solver run checks out" `Slow
            test_full_solver_history_checks;
          Alcotest.test_case "full cholesky run checks out" `Slow
            test_full_cholesky_history_checks;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "counters converge" `Quick test_counters_converge;
          Alcotest.test_case "propagation modes agree" `Quick
            test_propagation_modes_agree;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
    ]
