test/test_consistency.ml: Alcotest Format List Mc_consistency Mc_history Result String
