test/test_baselines.ml: Alcotest List Mc_baselines Mc_consistency Mc_dsm Mc_history Mc_sim Mc_util
