test/test_apps.ml: Alcotest Array Float Fun List Mc_apps Mc_baselines Mc_dsm Mc_history Mc_net Mc_sim Option Printf QCheck QCheck_alcotest
