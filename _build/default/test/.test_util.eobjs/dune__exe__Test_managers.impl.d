test/test_managers.ml: Alcotest Array List Mc_dsm Option
