test/test_sim.ml: Alcotest List Mc_sim Option String
