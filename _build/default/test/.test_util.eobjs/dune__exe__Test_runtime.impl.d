test/test_runtime.ml: Alcotest List Mc_consistency Mc_dsm Mc_history Mc_net Mc_sim Option Printf
