test/test_replica.ml: Alcotest Mc_dsm Mc_sim
