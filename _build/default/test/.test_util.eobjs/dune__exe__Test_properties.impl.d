test/test_properties.ml: Alcotest Array Format List Mc_consistency Mc_history QCheck QCheck_alcotest
