test/test_extensions.ml: Alcotest Array List Mc_apps Mc_consistency Mc_dsm Mc_history Mc_net Mc_sim Mc_util Option Printf String
