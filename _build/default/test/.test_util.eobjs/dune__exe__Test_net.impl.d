test/test_net.ml: Alcotest Array List Mc_net Mc_sim Mc_util
