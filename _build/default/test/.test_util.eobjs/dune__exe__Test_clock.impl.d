test/test_clock.ml: Alcotest Gen Mc_clock QCheck QCheck_alcotest
