test/test_util.ml: Alcotest Array Fun Int List Mc_util Option QCheck QCheck_alcotest String
