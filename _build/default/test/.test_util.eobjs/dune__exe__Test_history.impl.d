test/test_history.ml: Alcotest List Mc_history Mc_util String
