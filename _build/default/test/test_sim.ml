(* Tests for the discrete-event engine and its fibers. *)

module Engine = Mc_sim.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:5. (fun () -> log := 5 :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log);
  let tend = Engine.run e in
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  check_float "final time" 5. tend

let test_same_time_fifo () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule e ~delay:1. (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_fiber_delay () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.spawn e (fun () ->
      times := Engine.now e :: !times;
      Engine.delay e 2.5;
      times := Engine.now e :: !times;
      Engine.delay e 1.5;
      times := Engine.now e :: !times);
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "delay advances time" [ 0.; 2.5; 4. ]
    (List.rev !times)

let test_many_fibers_interleave () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.delay e 1.;
      log := "a1" :: !log;
      Engine.delay e 2.;
      log := "a2" :: !log);
  Engine.spawn e (fun () ->
      Engine.delay e 2.;
      log := "b1" :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list string)) "interleaving" [ "a1"; "b1"; "a2" ] (List.rev !log)

let test_suspend_resume () =
  let e = Engine.create () in
  let resumer = ref None in
  let got = ref 0 in
  Engine.spawn e (fun () ->
      let v = Engine.suspend e (fun resume -> resumer := Some resume) in
      got := v);
  Engine.schedule e ~delay:10. (fun () -> Option.get !resumer 99);
  ignore (Engine.run e);
  check_int "resumed with value" 99 !got

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
  scan 0

let test_deadlock_detection () =
  let e = Engine.create () in
  Engine.spawn e ~name:"stuck" (fun () ->
      ignore (Engine.suspend e (fun _resume -> ())));
  match Engine.run e with
  | (_ : float) -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
    check "deadlock names the fiber" true (contains_substring msg "stuck")

let test_fiber_failure () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> failwith "boom");
  match Engine.run e with
  | (_ : float) -> Alcotest.fail "expected failure propagation"
  | exception Engine.Fiber_failure (Failure msg, _) ->
    Alcotest.(check string) "original exception" "boom" msg
  | exception _ -> Alcotest.fail "wrong exception"

let test_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~delay:1. (fun () -> fired := 1 :: !fired);
  Engine.schedule e ~delay:10. (fun () -> fired := 10 :: !fired);
  let t = Engine.run_until e ~limit:5. in
  Alcotest.(check (list int)) "only early events" [ 1 ] !fired;
  check "stopped before limit" true (t <= 5.);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "resumes later" [ 10; 1 ] !fired

let test_events_processed () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:1. ignore
  done;
  ignore (Engine.run e);
  check_int "events counted" 7 (Engine.events_processed e)

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) ignore)

(* ------------------------------------------------------------------ *)
(* Condition variables                                                 *)
(* ------------------------------------------------------------------ *)

let test_cond_signal_fifo () =
  let e = Engine.create () in
  let c = Engine.Cond.create () in
  let log = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        Engine.Cond.wait e c;
        log := i :: !log)
  done;
  Engine.schedule e ~delay:1. (fun () -> Engine.Cond.signal e c);
  Engine.schedule e ~delay:2. (fun () -> Engine.Cond.signal e c);
  Engine.schedule e ~delay:3. (fun () -> Engine.Cond.signal e c);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo wakeups" [ 1; 2; 3 ] (List.rev !log)

let test_cond_broadcast () =
  let e = Engine.create () in
  let c = Engine.Cond.create () in
  let woken = ref 0 in
  for _ = 1 to 5 do
    Engine.spawn e (fun () ->
        Engine.Cond.wait e c;
        incr woken)
  done;
  Engine.schedule e ~delay:1. (fun () ->
      Alcotest.(check int) "five waiters" 5 (Engine.Cond.waiters c);
      Engine.Cond.broadcast e c);
  ignore (Engine.run e);
  check_int "all woken" 5 !woken

let test_cond_signal_empty () =
  let e = Engine.create () in
  let c = Engine.Cond.create () in
  Engine.Cond.signal e c;
  Engine.Cond.broadcast e c;
  check_int "no waiters" 0 (Engine.Cond.waiters c)

let () =
  Alcotest.run "mc_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "events fire in time order" `Quick test_event_order;
          Alcotest.test_case "fifo at equal times" `Quick test_same_time_fifo;
          Alcotest.test_case "fiber delay" `Quick test_fiber_delay;
          Alcotest.test_case "fibers interleave" `Quick test_many_fibers_interleave;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "fiber failure propagates" `Quick test_fiber_failure;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "event counter" `Quick test_events_processed;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
        ] );
      ( "cond",
        [
          Alcotest.test_case "signal wakes fifo" `Quick test_cond_signal_fifo;
          Alcotest.test_case "broadcast wakes all" `Quick test_cond_broadcast;
          Alcotest.test_case "signal with no waiters" `Quick test_cond_signal_empty;
        ] );
    ]
