(* Direct unit tests of the protocol agents: the lock manager and the
   barrier manager state machines, exercised without the network. *)

module Lock_manager = Mc_dsm.Lock_manager
module Barrier_manager = Mc_dsm.Barrier_manager
module Protocol = Mc_dsm.Protocol

let _check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* collect outgoing messages instead of sending them. [drain log] returns
   everything sent so far in order; [take log] returns only the messages
   sent since the previous [take]. *)
type 'a log = { mutable entries : 'a list; mutable consumed : int }

let collector () =
  let log = { entries = []; consumed = 0 } in
  let send ~dst msg = log.entries <- (dst, msg) :: log.entries in
  (log, send)

let drain log = List.rev log.entries

let take log =
  let all = drain log in
  let fresh = List.filteri (fun i _ -> i >= log.consumed) all in
  log.consumed <- List.length all;
  fresh

let lock_request proc lock write = Protocol.Lock_request { proc; lock; write }

let unlock proc lock write ~n =
  Protocol.Unlock_msg
    { proc; lock; write; vc = Array.make n 0; write_set = []; values = [] }

(* ------------------------------------------------------------------ *)
(* Lock manager                                                        *)
(* ------------------------------------------------------------------ *)

let test_write_lock_fifo () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:3 ~demand:false ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "m" true);
  Lock_manager.handle m ~src:1 (lock_request 1 "m" true);
  Lock_manager.handle m ~src:2 (lock_request 2 "m" true);
  (* only the first request is granted *)
  (match drain log with
  | [ (0, Protocol.Lock_grant { seq = 0; write = true; _ }) ] -> ()
  | msgs -> Alcotest.failf "expected one grant to p0, got %d messages" (List.length msgs));
  check_int "one grant" 1 (Lock_manager.grants_issued m);
  (* releasing grants the next in FIFO order *)
  Lock_manager.handle m ~src:0 (unlock 0 "m" true ~n:3);
  (match drain log with
  | [ _; (0, Protocol.Unlock_ack { seq = 1; _ }); (1, Protocol.Lock_grant { seq = 2; _ }) ]
    -> ()
  | msgs -> Alcotest.failf "unexpected sequence (%d messages)" (List.length msgs));
  check_int "two grants" 2 (Lock_manager.grants_issued m)

let test_readers_granted_together () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:4 ~demand:false ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "m" false);
  Lock_manager.handle m ~src:1 (lock_request 1 "m" false);
  Lock_manager.handle m ~src:2 (lock_request 2 "m" true);
  Lock_manager.handle m ~src:3 (lock_request 3 "m" false);
  (* both leading readers granted; the writer blocks; the trailing reader
     queues behind the writer (strict FIFO, no writer starvation) *)
  let grants =
    List.filter_map
      (function dst, Protocol.Lock_grant _ -> Some dst | _ -> None)
      (drain log)
  in
  Alcotest.(check (list int)) "two readers in" [ 0; 1 ] grants;
  (* releasing both readers lets the writer in, then the last reader *)
  Lock_manager.handle m ~src:0 (unlock 0 "m" false ~n:4);
  Lock_manager.handle m ~src:1 (unlock 1 "m" false ~n:4);
  let grants =
    List.filter_map
      (function dst, Protocol.Lock_grant _ -> Some dst | _ -> None)
      (drain log)
  in
  Alcotest.(check (list int)) "writer after readers" [ 0; 1; 2 ] grants;
  Lock_manager.handle m ~src:2 (unlock 2 "m" true ~n:4);
  let grants =
    List.filter_map
      (function dst, Protocol.Lock_grant _ -> Some dst | _ -> None)
      (drain log)
  in
  Alcotest.(check (list int)) "trailing reader last" [ 0; 1; 2; 3 ] grants

let test_dep_accumulates_across_holders () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:3 ~demand:false ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "m" true);
  Lock_manager.handle m ~src:0
    (Protocol.Unlock_msg
       { proc = 0; lock = "m"; write = true; vc = [| 5; 0; 0 |]; write_set = [];
         values = [] });
  Lock_manager.handle m ~src:1 (lock_request 1 "m" true);
  Lock_manager.handle m ~src:1
    (Protocol.Unlock_msg
       { proc = 1; lock = "m"; write = true; vc = [| 3; 7; 0 |]; write_set = [];
         values = [] });
  Lock_manager.handle m ~src:2 (lock_request 2 "m" true);
  let final_grant =
    List.rev (drain log) |> List.find_map (function
      | 2, Protocol.Lock_grant { dep; _ } -> Some dep
      | _ -> None)
  in
  (* the third holder must wait for the max of both releases *)
  Alcotest.(check (array int)) "accumulated dependency clock" [| 5; 7; 0 |]
    (Option.get final_grant)

let test_demand_write_sets_forwarded () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:2 ~demand:true ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "m" true);
  Lock_manager.handle m ~src:0
    (Protocol.Unlock_msg
       {
         proc = 0;
         lock = "m";
         write = true;
         vc = [| 4; 0 |];
         write_set = [ "a"; "b" ];
         values = [];
       });
  Lock_manager.handle m ~src:1 (lock_request 1 "m" true);
  let invalid =
    List.rev (drain log) |> List.find_map (function
      | 1, Protocol.Lock_grant { invalid; _ } -> Some invalid
      | _ -> None)
  in
  let invalid = List.sort compare (Option.get invalid) in
  (match invalid with
  | [ ("a", dep_a); ("b", _) ] ->
    Alcotest.(check (array int)) "write-set dep" [| 4; 0 |] dep_a
  | _ -> Alcotest.fail "expected invalid entries for a and b");
  ()

let test_lock_errors () =
  let _, send = collector () in
  let m = Lock_manager.create ~n:2 ~demand:false ~send in
  (match Lock_manager.handle m ~src:0 (unlock 0 "m" true ~n:2) with
  | () -> Alcotest.fail "expected rejection of unmatched unlock"
  | exception Invalid_argument _ -> ());
  match Lock_manager.handle m ~src:1 (lock_request 0 "m" true) with
  | () -> Alcotest.fail "expected rejection of forged origin"
  | exception Invalid_argument _ -> ()

let test_independent_locks () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:2 ~demand:false ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "a" true);
  Lock_manager.handle m ~src:1 (lock_request 1 "b" true);
  let grants =
    List.filter_map
      (function dst, Protocol.Lock_grant _ -> Some dst | _ -> None)
      (drain log)
  in
  Alcotest.(check (list int)) "different locks do not interfere" [ 0; 1 ] grants

(* ------------------------------------------------------------------ *)
(* Barrier manager                                                     *)
(* ------------------------------------------------------------------ *)

let arrive ?(sent = [||]) proc episode vc members =
  Protocol.Barrier_arrive { proc; episode; vc; members; sent }

let test_barrier_release_on_full_arrival () =
  let log, send = collector () in
  let m = Barrier_manager.create ~n:3 ~send in
  Barrier_manager.handle m ~src:0 (arrive 0 0 [| 1; 0; 0 |] []);
  Barrier_manager.handle m ~src:1 (arrive 1 0 [| 0; 2; 0 |] []);
  check_int "not released yet" 0 (List.length (drain log));
  Barrier_manager.handle m ~src:2 (arrive 2 0 [| 0; 0; 3 |] []);
  let releases = drain log in
  check_int "everyone released" 3 (List.length releases);
  List.iter
    (fun (_, msg) ->
      match msg with
      | Protocol.Barrier_release { dep; episode = 0; _ } ->
        Alcotest.(check (array int)) "dep is the pointwise max" [| 1; 2; 3 |] dep
      | _ -> Alcotest.fail "expected a release")
    releases;
  check_int "episode counted" 1 (Barrier_manager.episodes_released m)

let test_barrier_interleaved_episodes () =
  (* a fast process may arrive at episode 1 before a slow one reaches
     episode 0 *)
  let log, send = collector () in
  let m = Barrier_manager.create ~n:2 ~send in
  Barrier_manager.handle m ~src:0 (arrive 0 0 [| 0; 0 |] []);
  Barrier_manager.handle m ~src:1 (arrive 1 0 [| 0; 0 |] []);
  check_int "episode 0 released" 2 (List.length (take log));
  Barrier_manager.handle m ~src:0 (arrive 0 1 [| 1; 0 |] []);
  check_int "episode 1 waits" 0 (List.length (take log));
  Barrier_manager.handle m ~src:1 (arrive 1 1 [| 0; 1 |] []);
  check_int "episode 1 released" 2 (List.length (take log))

let test_barrier_subset_release () =
  let log, send = collector () in
  let m = Barrier_manager.create ~n:4 ~send in
  Barrier_manager.handle m ~src:1 (arrive 1 0 [| 0; 1; 0; 0 |] [ 1; 3 ]);
  check_int "waits for the other member" 0 (List.length (drain log));
  Barrier_manager.handle m ~src:3 (arrive 3 0 [| 0; 0; 0; 4 |] [ 1; 3 ]);
  let releases = drain log in
  let recipients = List.map fst releases |> List.sort compare in
  Alcotest.(check (list int)) "only members released" [ 1; 3 ] recipients

let test_barrier_errors () =
  let _, send = collector () in
  let m = Barrier_manager.create ~n:2 ~send in
  Barrier_manager.handle m ~src:0 (arrive 0 0 [| 0; 0 |] []);
  (match Barrier_manager.handle m ~src:0 (arrive 0 0 [| 0; 0 |] []) with
  | () -> Alcotest.fail "expected double-arrival rejection"
  | exception Invalid_argument _ -> ());
  (match Barrier_manager.handle m ~src:1 (arrive 0 1 [| 0; 0 |] []) with
  | () -> Alcotest.fail "expected forged-origin rejection"
  | exception Invalid_argument _ -> ());
  match Barrier_manager.handle m ~src:0 (arrive 0 0 [| 0; 0 |] [ 1 ]) with
  | () -> Alcotest.fail "expected non-member rejection"
  | exception Invalid_argument _ -> ()

(* count-vector mode: the release tells each process how many updates to
   expect from each peer (Section 6) *)
let test_barrier_count_vectors () =
  let log, send = collector () in
  let m = Barrier_manager.create ~n:2 ~send in
  Barrier_manager.handle m ~src:0
    (arrive ~sent:[| 0; 3 |] 0 0 [| 0; 0 |] []);
  Barrier_manager.handle m ~src:1
    (arrive ~sent:[| 5; 0 |] 1 0 [| 0; 0 |] []);
  let expects =
    List.filter_map
      (function
        | dst, Protocol.Barrier_release { expect; _ } -> Some (dst, expect)
        | _ -> None)
      (drain log)
    |> List.sort compare
  in
  match expects with
  | [ (0, e0); (1, e1) ] ->
    Alcotest.(check (array int)) "p0 expects 5 from p1" [| 0; 5 |] e0;
    Alcotest.(check (array int)) "p1 expects 3 from p0" [| 3; 0 |] e1
  | _ -> Alcotest.fail "expected two releases with count vectors"

(* entry mode: guarded values accumulate at the manager and ride grants *)
let test_entry_values_ride_grants () =
  let log, send = collector () in
  let m = Lock_manager.create ~n:2 ~demand:false ~send in
  Lock_manager.handle m ~src:0 (lock_request 0 "m" true);
  Lock_manager.handle m ~src:0
    (Protocol.Unlock_msg
       {
         proc = 0;
         lock = "m";
         write = true;
         vc = [| 0; 0 |];
         write_set = [ "g" ];
         values = [ ("g", 42, 123) ];
       });
  Lock_manager.handle m ~src:1 (lock_request 1 "m" true);
  let grant_values =
    List.rev (drain log) |> List.find_map (function
      | 1, Protocol.Lock_grant { values; _ } -> Some values
      | _ -> None)
  in
  match Option.get grant_values with
  | [ ("g", 42, 123) ] -> ()
  | _ -> Alcotest.fail "expected the guarded value on the grant"

let () =
  Alcotest.run "mc_dsm.managers"
    [
      ( "lock_manager",
        [
          Alcotest.test_case "write locks FIFO" `Quick test_write_lock_fifo;
          Alcotest.test_case "readers granted together" `Quick
            test_readers_granted_together;
          Alcotest.test_case "dependency clock accumulates" `Quick
            test_dep_accumulates_across_holders;
          Alcotest.test_case "demand write-sets forwarded" `Quick
            test_demand_write_sets_forwarded;
          Alcotest.test_case "error handling" `Quick test_lock_errors;
          Alcotest.test_case "independent locks" `Quick test_independent_locks;
          Alcotest.test_case "entry values ride grants" `Quick
            (fun () -> test_entry_values_ride_grants ());
        ] );
      ( "barrier_manager",
        [
          Alcotest.test_case "release on full arrival" `Quick
            test_barrier_release_on_full_arrival;
          Alcotest.test_case "interleaved episodes" `Quick
            test_barrier_interleaved_episodes;
          Alcotest.test_case "subset release" `Quick test_barrier_subset_release;
          Alcotest.test_case "count vectors (Sec. 6)" `Quick
            test_barrier_count_vectors;
          Alcotest.test_case "error handling" `Quick test_barrier_errors;
        ] );
    ]
