(* Tests for vector and Lamport clocks. *)

module Vc = Mc_clock.Vector_clock
module Lc = Mc_clock.Lamport_clock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_create_and_access () =
  let v = Vc.create 3 in
  check_int "size" 3 (Vc.size v);
  check_int "zero" 0 (Vc.get v 0);
  let v = Vc.tick v 1 in
  check_int "ticked" 1 (Vc.get v 1);
  check_int "others untouched" 0 (Vc.get v 0);
  let v2 = Vc.set v 2 7 in
  check_int "set" 7 (Vc.get v2 2);
  check_int "immutability" 0 (Vc.get v 2)

let test_merge () =
  let a = Vc.of_list [ 1; 5; 0 ] and b = Vc.of_list [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "pointwise max" [ 2; 5; 4 ] (Vc.to_list (Vc.merge a b))

let test_compare () =
  let base = Vc.of_list [ 1; 1; 1 ] in
  let later = Vc.of_list [ 1; 2; 1 ] in
  let conc = Vc.of_list [ 2; 0; 1 ] in
  check "before" true (Vc.compare_clocks base later = Vc.Before);
  check "after" true (Vc.compare_clocks later base = Vc.After);
  check "equal" true (Vc.compare_clocks base base = Vc.Equal);
  check "concurrent" true (Vc.compare_clocks later conc = Vc.Concurrent);
  check "leq reflexive" true (Vc.leq base base);
  check "dominates" true (Vc.dominates later base)

let test_deliverable () =
  let local = Vc.of_list [ 2; 3; 1 ] in
  (* next message from process 0 *)
  check "in-order deliverable" true
    (Vc.deliverable ~sender:0 (Vc.of_list [ 3; 2; 0 ]) local);
  check "gap not deliverable" false
    (Vc.deliverable ~sender:0 (Vc.of_list [ 4; 2; 0 ]) local);
  check "missing dependency" false
    (Vc.deliverable ~sender:0 (Vc.of_list [ 3; 4; 0 ]) local);
  check "duplicate not deliverable" false
    (Vc.deliverable ~sender:0 (Vc.of_list [ 2; 0; 0 ]) local)

let test_size_mismatch () =
  Alcotest.check_raises "merge mismatch"
    (Invalid_argument "Vector_clock.merge: size mismatch") (fun () ->
      ignore (Vc.merge (Vc.create 2) (Vc.create 3)))

let vc_merge_commutes =
  QCheck.Test.make ~name:"merge commutes and is idempotent" ~count:200
    QCheck.(pair (list_of_size (Gen.return 4) (int_bound 50)) (list_of_size (Gen.return 4) (int_bound 50)))
    (fun (xs, ys) ->
      let a = Vc.of_list xs and b = Vc.of_list ys in
      Vc.equal (Vc.merge a b) (Vc.merge b a)
      && Vc.equal (Vc.merge a a) a
      && Vc.leq a (Vc.merge a b))

let vc_compare_consistent =
  QCheck.Test.make ~name:"compare agrees with leq" ~count:200
    QCheck.(pair (list_of_size (Gen.return 3) (int_bound 5)) (list_of_size (Gen.return 3) (int_bound 5)))
    (fun (xs, ys) ->
      let a = Vc.of_list xs and b = Vc.of_list ys in
      match Vc.compare_clocks a b with
      | Vc.Equal -> Vc.equal a b
      | Vc.Before -> Vc.leq a b && not (Vc.leq b a)
      | Vc.After -> Vc.leq b a && not (Vc.leq a b)
      | Vc.Concurrent -> (not (Vc.leq a b)) && not (Vc.leq b a))

let test_lamport () =
  let c = Lc.create () in
  check_int "initial" 0 (Lc.read c);
  check_int "tick" 1 (Lc.tick c);
  check_int "tick again" 2 (Lc.tick c);
  check_int "observe larger" 11 (Lc.observe c 10);
  check_int "observe smaller keeps monotone" 12 (Lc.observe c 3)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mc_clock"
    [
      ( "vector_clock",
        [
          Alcotest.test_case "create/tick/set" `Quick test_create_and_access;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "causal deliverability" `Quick test_deliverable;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          qt vc_merge_commutes;
          qt vc_compare_consistent;
        ] );
      ("lamport_clock", [ Alcotest.test_case "tick/observe" `Quick test_lamport ]);
    ]
