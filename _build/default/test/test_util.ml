(* Tests for mc_util: priority queue, RNG, relations, statistics. *)

module Pqueue = Mc_util.Pqueue
module Rng = Mc_util.Rng
module Relation = Mc_util.Relation
module Stats = Mc_util.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter
    (fun (p, v) -> Pqueue.add q ~priority:p v)
    [ (3., "c"); (1., "a"); (2., "b"); (0.5, "z") ];
  let order = ref [] in
  Pqueue.drain q (fun _ v -> order := v :: !order);
  Alcotest.(check (list string)) "priority order" [ "z"; "a"; "b"; "c" ]
    (List.rev !order)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.add q ~priority:1.0 v) [ 1; 2; 3; 4; 5 ];
  let order = ref [] in
  Pqueue.drain q (fun _ v -> order := v :: !order);
  Alcotest.(check (list int)) "fifo among equal priorities" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_pqueue_empty () =
  let q = Pqueue.create () in
  check "empty" true (Pqueue.is_empty q);
  check_int "length" 0 (Pqueue.length q);
  (match Pqueue.peek_min q with
  | None -> ()
  | Some _ -> Alcotest.fail "peek of empty queue");
  Alcotest.check_raises "pop of empty" Not_found (fun () ->
      ignore (Pqueue.pop_min q))

let test_pqueue_interleaved () =
  let q = Pqueue.create () in
  Pqueue.add q ~priority:5. 5;
  Pqueue.add q ~priority:1. 1;
  let _, v = Pqueue.pop_min q in
  check_int "first pop" 1 v;
  Pqueue.add q ~priority:0.5 0;
  Pqueue.add q ~priority:10. 10;
  let _, v = Pqueue.pop_min q in
  check_int "second pop" 0 v;
  let _, v = Pqueue.pop_min q in
  check_int "third pop" 5 v;
  let _, v = Pqueue.pop_min q in
  check_int "fourth pop" 10 v;
  check "drained" true (Pqueue.is_empty q)

let test_pqueue_clear () =
  let q = Pqueue.create () in
  for i = 0 to 9 do
    Pqueue.add q ~priority:(float_of_int i) i
  done;
  check_int "ten elements" 10 (Pqueue.length q);
  Pqueue.clear q;
  check "cleared" true (Pqueue.is_empty q)

let pqueue_heap_property =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority order" ~count:200
    QCheck.(list (pair (float_range 0. 1000.) small_int))
    (fun entries ->
      let q = Pqueue.create () in
      List.iter (fun (p, v) -> Pqueue.add q ~priority:p v) entries;
      let last = ref neg_infinity in
      let sorted = ref true in
      Pqueue.drain q (fun p _ ->
          if p < !last then sorted := false;
          last := p);
      !sorted)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    check "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_split_independent () =
  let a = Rng.make 42 in
  let c = Rng.split a in
  let x = Rng.bits64 a and y = Rng.bits64 c in
  check "split streams differ" true (x <> y)

let test_rng_bounds () =
  let rng = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    check "int in bounds" true (v >= 0 && v < 10);
    let f = Rng.float rng 3.0 in
    check "float in bounds" true (f >= 0.0 && f < 3.0);
    let k = Rng.int_in rng (-5) 5 in
    check "int_in bounds" true (k >= -5 && k <= 5);
    let g = Rng.float_in rng 2.0 4.0 in
    check "float_in bounds" true (g >= 2.0 && g < 4.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.make 3 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "a permutation" (Array.init 50 Fun.id) sorted

let test_rng_uniformish () =
  (* crude balance check: each bucket of 10 gets a reasonable share *)
  let rng = Rng.make 1234 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter (fun c -> check "bucket within 30% of mean" true (c > 700 && c < 1300)) buckets

(* ------------------------------------------------------------------ *)
(* Relation                                                            *)
(* ------------------------------------------------------------------ *)

let test_relation_basic () =
  let r = Relation.create 4 in
  check "initially empty" false (Relation.mem r 0 1);
  Relation.add r 0 1;
  Relation.add r 1 2;
  check "mem added" true (Relation.mem r 0 1);
  check "not transitive yet" false (Relation.mem r 0 2);
  check_int "cardinal" 2 (Relation.cardinal r);
  Alcotest.(check (list int)) "successors" [ 1 ] (Relation.successors r 0);
  Alcotest.(check (list int)) "predecessors" [ 1 ] (Relation.predecessors r 2)

let test_relation_closure () =
  let r = Relation.create 5 in
  Relation.add r 0 1;
  Relation.add r 1 2;
  Relation.add r 2 3;
  let c = Relation.transitive_closure r in
  check "0 reaches 3" true (Relation.mem c 0 3);
  check "3 does not reach 0" false (Relation.mem c 3 0);
  check "4 isolated" false (Relation.mem c 4 0);
  check "original untouched" false (Relation.mem r 0 3)

let test_relation_reduction () =
  let r = Relation.create 4 in
  Relation.add r 0 1;
  Relation.add r 1 2;
  Relation.add r 0 2;
  (* redundant *)
  let red = Relation.transitive_reduction r in
  check "redundant edge removed" false (Relation.mem red 0 2);
  check "chain kept" true (Relation.mem red 0 1 && Relation.mem red 1 2);
  check "same closure" true
    (Relation.equal
       (Relation.transitive_closure red)
       (Relation.transitive_closure r))

let test_relation_cycles () =
  let r = Relation.create 3 in
  Relation.add r 0 1;
  Relation.add r 1 0;
  check "cyclic" false (Relation.is_acyclic r);
  let ok = Relation.create 3 in
  Relation.add ok 0 1;
  check "acyclic" true (Relation.is_acyclic ok);
  let self = Relation.create 2 in
  Relation.add self 1 1;
  check "self-loop is a cycle" false (Relation.is_acyclic self)

let test_relation_topo () =
  let r = Relation.create 4 in
  Relation.add r 2 0;
  Relation.add r 0 1;
  Relation.add r 0 3;
  let order = Relation.topological_order r in
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  check "2 before 0" true (pos 2 < pos 0);
  check "0 before 1" true (pos 0 < pos 1);
  check "0 before 3" true (pos 0 < pos 3);
  check_int "all nodes" 4 (List.length order)

let test_relation_union_subset_restrict () =
  let a = Relation.create 3 and b = Relation.create 3 in
  Relation.add a 0 1;
  Relation.add b 1 2;
  let u = Relation.union a b in
  check "union has both" true (Relation.mem u 0 1 && Relation.mem u 1 2);
  check "a subset of union" true (Relation.subset a u);
  check "union not subset of a" false (Relation.subset u a);
  let restricted = Relation.restrict u (fun i -> i <> 1) in
  check_int "restrict drops edges touching 1" 0 (Relation.cardinal restricted)

let relation_closure_idempotent =
  QCheck.Test.make ~name:"transitive closure is idempotent" ~count:100
    QCheck.(list (pair (int_bound 9) (int_bound 9)))
    (fun edges ->
      let r = Relation.create 10 in
      List.iter (fun (i, j) -> Relation.add r i j) edges;
      let c1 = Relation.transitive_closure r in
      let c2 = Relation.transitive_closure c1 in
      Relation.equal c1 c2)

let relation_reduction_preserves_closure =
  QCheck.Test.make ~name:"transitive reduction preserves the closure" ~count:100
    QCheck.(list (pair (int_bound 7) (int_bound 7)))
    (fun edges ->
      (* build an acyclic relation by orienting edges low -> high *)
      let r = Relation.create 8 in
      List.iter
        (fun (i, j) -> if i < j then Relation.add r i j)
        edges;
      let red = Relation.transitive_reduction r in
      Relation.equal
        (Relation.transitive_closure red)
        (Relation.transitive_closure r)
      && Relation.subset red r)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.Summary.total s);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats.Summary.stddev s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Stats.Summary.mean s);
  Alcotest.(check (float 0.)) "stddev of empty" 0. (Stats.Summary.stddev s)

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "a";
  Stats.Counters.add c "b" 5;
  Stats.Counters.incr c "a";
  check_int "a" 2 (Stats.Counters.get c "a");
  check_int "b" 5 (Stats.Counters.get c "b");
  check_int "missing" 0 (Stats.Counters.get c "zz");
  Alcotest.(check (list (pair string int)))
    "to_list sorted"
    [ ("a", 2); ("b", 5) ]
    (Stats.Counters.to_list c);
  let d = Stats.Counters.create () in
  Stats.Counters.add d "a" 10;
  Stats.Counters.merge c d;
  check_int "merged" 12 (Stats.Counters.get c "a")

(* ------------------------------------------------------------------ *)
(* Tablefmt                                                            *)
(* ------------------------------------------------------------------ *)

let test_tablefmt () =
  let s =
    Mc_util.Tablefmt.render ~headers:[ "name"; "value" ]
      ~aligns:[ Mc_util.Tablefmt.Left; Mc_util.Tablefmt.Right ]
      [ [ "x"; "1" ]; [ "longer"; "23" ] ]
  in
  check "contains header" true
    (String.length s > 0 && String.sub s 0 4 = "name");
  (* rows padded: every line has same length *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  check_int "four lines" 4 (List.length lines)

let test_fmt_helpers () =
  Alcotest.(check string) "integral float" "42" (Mc_util.Tablefmt.fmt_float 42.0);
  Alcotest.(check string) "ratio" "2.50x" (Mc_util.Tablefmt.fmt_ratio 2.5)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "mc_util"
    [
      ( "pqueue",
        [
          Alcotest.test_case "priority order" `Quick test_pqueue_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "empty queue" `Quick test_pqueue_empty;
          Alcotest.test_case "interleaved add/pop" `Quick test_pqueue_interleaved;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          qt pqueue_heap_property;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "roughly uniform" `Quick test_rng_uniformish;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basic membership" `Quick test_relation_basic;
          Alcotest.test_case "transitive closure" `Quick test_relation_closure;
          Alcotest.test_case "transitive reduction" `Quick test_relation_reduction;
          Alcotest.test_case "cycle detection" `Quick test_relation_cycles;
          Alcotest.test_case "topological order" `Quick test_relation_topo;
          Alcotest.test_case "union/subset/restrict" `Quick test_relation_union_subset_restrict;
          qt relation_closure_idempotent;
          qt relation_reduction_preserves_closure;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary statistics" `Quick test_summary;
          Alcotest.test_case "empty summary" `Quick test_summary_empty;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "tablefmt",
        [
          Alcotest.test_case "render" `Quick test_tablefmt;
          Alcotest.test_case "formatting helpers" `Quick test_fmt_helpers;
        ] );
    ]
