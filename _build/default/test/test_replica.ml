(* Tests for the dual-view replica: PRAM application on receipt, causal
   delivery, demand-mode invalidation and watchers. *)

module Engine = Mc_sim.Engine
module Replica = Mc_dsm.Replica
module Protocol = Mc_dsm.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_local_write_visible_in_both_views () =
  let e = Engine.create () in
  let r = Replica.create e ~id:0 ~n:2 () in
  let u = Replica.local_write r ~loc:"x" ~numeric:5 ~tag:100 in
  check_int "causal numeric" 5 (fst (Replica.causal_read r "x"));
  check_int "pram numeric" 5 (fst (Replica.pram_read r "x"));
  check_int "tag" 100 (snd (Replica.causal_read r "x"));
  check_int "useq" 1 u.Protocol.useq;
  check_int "writer" 0 u.Protocol.writer;
  Alcotest.(check (array int)) "applied counts own write" [| 1; 0 |] (Replica.applied r)

let test_pram_applies_on_receipt_causal_waits () =
  (* update u2 from writer 1 depends on u1 from writer 0; deliver u2
     first: the PRAM view shows it immediately, the causal view only
     after u1 arrives *)
  let e = Engine.create () in
  let w0 = Replica.create e ~id:0 ~n:3 () in
  let w1 = Replica.create e ~id:1 ~n:3 () in
  let r = Replica.create e ~id:2 ~n:3 () in
  let u1 = Replica.local_write w0 ~loc:"x" ~numeric:1 ~tag:11 in
  Replica.receive w1 u1;
  let u2 = Replica.local_write w1 ~loc:"y" ~numeric:2 ~tag:22 in
  (* out of (causal) order delivery at r *)
  Replica.receive r u2;
  check_int "pram sees y immediately" 2 (fst (Replica.pram_read r "y"));
  check_int "causal buffers y" 0 (fst (Replica.causal_read r "y"));
  check_int "one pending" 1 (Replica.pending_count r);
  Replica.receive r u1;
  check_int "causal x" 1 (fst (Replica.causal_read r "x"));
  check_int "causal y after dependency" 2 (fst (Replica.causal_read r "y"));
  check_int "drained" 0 (Replica.pending_count r)

let test_fifo_gap_buffering () =
  let e = Engine.create () in
  let w = Replica.create e ~id:0 ~n:2 () in
  let r = Replica.create e ~id:1 ~n:2 () in
  let u1 = Replica.local_write w ~loc:"x" ~numeric:1 ~tag:1 in
  let u2 = Replica.local_write w ~loc:"x" ~numeric:2 ~tag:2 in
  (* channels are FIFO in the real system; feed in order and check both
     views advance correctly through the sequence *)
  Replica.receive r u1;
  check_int "after u1" 1 (fst (Replica.causal_read r "x"));
  Replica.receive r u2;
  check_int "after u2" 2 (fst (Replica.causal_read r "x"));
  Alcotest.(check (array int)) "received" [| 2; 0 |] (Replica.received r)

let test_decrement_merging () =
  let e = Engine.create () in
  let a = Replica.create e ~id:0 ~n:2 () in
  let b = Replica.create e ~id:1 ~n:2 () in
  let init = Replica.local_write a ~loc:"c" ~numeric:10 ~tag:0 in
  Replica.receive b init;
  let da, observed_a = Replica.local_dec a ~loc:"c" ~amount:3 in
  let db, observed_b = Replica.local_dec b ~loc:"c" ~amount:4 in
  check_int "a observed" 10 observed_a;
  check_int "b observed" 10 observed_b;
  (* cross-deliver: both replicas converge to 3 *)
  Replica.receive b da;
  Replica.receive a db;
  check_int "a converged" 3 (fst (Replica.causal_read a "c"));
  check_int "b converged" 3 (fst (Replica.causal_read b "c"))

let test_dep_satisfied () =
  let e = Engine.create () in
  let r = Replica.create e ~id:0 ~n:2 () in
  check "zero dep satisfied" true (Replica.dep_satisfied r [| 0; 0 |]);
  check "unmet dep" false (Replica.dep_satisfied r [| 0; 1 |]);
  ignore (Replica.local_write r ~loc:"x" ~numeric:1 ~tag:1);
  check "own writes count" true (Replica.dep_satisfied r [| 1; 0 |])

let test_demand_invalidation () =
  let e = Engine.create () in
  let w = Replica.create e ~id:0 ~n:2 () in
  let r = Replica.create e ~id:1 ~n:2 () in
  Replica.mark_invalid r "x" [| 1; 0 |];
  check "blocked until dep met" true (Replica.location_blocked r "x");
  check "other locations free" false (Replica.location_blocked r "y");
  let u = Replica.local_write w ~loc:"x" ~numeric:9 ~tag:9 in
  Replica.receive r u;
  check "unblocked after apply" false (Replica.location_blocked r "x");
  (* marking with an already-satisfied dep is a no-op *)
  Replica.mark_invalid r "x" [| 1; 0 |];
  check "satisfied dep does not block" false (Replica.location_blocked r "x")

let test_wait_until_wakes_on_apply () =
  let e = Engine.create () in
  let w = Replica.create e ~id:0 ~n:2 () in
  let r = Replica.create e ~id:1 ~n:2 () in
  let woke_at = ref (-1.) in
  Engine.spawn e (fun () ->
      Replica.wait_until r (fun () -> fst (Replica.causal_read r "x") = 42);
      woke_at := Engine.now e);
  Engine.schedule e ~delay:5. (fun () ->
      let u = Replica.local_write w ~loc:"x" ~numeric:42 ~tag:1 in
      Replica.receive r u);
  ignore (Engine.run e);
  Alcotest.(check (float 1e-9)) "woke when value arrived" 5. !woke_at

let test_wait_until_immediate () =
  let e = Engine.create () in
  let r = Replica.create e ~id:0 ~n:1 () in
  let ran = ref false in
  Engine.spawn e (fun () ->
      Replica.wait_until r (fun () -> true);
      ran := true);
  ignore (Engine.run e);
  check "no suspension for true predicate" true !ran

let test_self_receive_rejected () =
  let e = Engine.create () in
  let r = Replica.create e ~id:0 ~n:2 () in
  let u = Replica.local_write r ~loc:"x" ~numeric:1 ~tag:1 in
  Alcotest.check_raises "self receive"
    (Invalid_argument "Replica.receive: update from self (already applied locally)")
    (fun () -> Replica.receive r u)

let () =
  Alcotest.run "mc_dsm.replica"
    [
      ( "replica",
        [
          Alcotest.test_case "local writes in both views" `Quick
            test_local_write_visible_in_both_views;
          Alcotest.test_case "pram immediate, causal ordered" `Quick
            test_pram_applies_on_receipt_causal_waits;
          Alcotest.test_case "per-writer sequences" `Quick test_fifo_gap_buffering;
          Alcotest.test_case "decrement convergence" `Quick test_decrement_merging;
          Alcotest.test_case "dep_satisfied" `Quick test_dep_satisfied;
          Alcotest.test_case "demand invalidation" `Quick test_demand_invalidation;
          Alcotest.test_case "wait_until wakes on apply" `Quick
            test_wait_until_wakes_on_apply;
          Alcotest.test_case "wait_until immediate" `Quick test_wait_until_immediate;
          Alcotest.test_case "self receive rejected" `Quick test_self_receive_rejected;
        ] );
    ]
