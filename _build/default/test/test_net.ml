(* Tests for the simulated network: FIFO channels, latency models,
   pause/resume, sender occupancy and statistics. *)

module Engine = Mc_sim.Engine
module Network = Mc_net.Network
module Latency = Mc_net.Latency

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let make ?(nodes = 3) ?(latency = Latency.constant 10.) ?send_cost ?byte_cost () =
  let e = Engine.create () in
  let net = Network.create e ~nodes ~latency ?send_cost ?byte_cost () in
  (e, net)

let test_basic_delivery () =
  let e, net = make () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src msg -> got := (src, msg, Engine.now e) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  ignore (Engine.run e);
  match !got with
  | [ (src, msg, time) ] ->
    check_int "source" 0 src;
    Alcotest.(check string) "payload" "hello" msg;
    Alcotest.(check (float 1e-9)) "latency applied" 10. time
  | _ -> Alcotest.fail "expected one delivery"

let test_fifo_per_channel () =
  (* with random latencies, per-channel order must still hold *)
  let e = Engine.create () in
  let latency = Latency.uniform (Mc_util.Rng.make 99) ~lo:1. ~hi:50. in
  let net = Network.create e ~nodes:2 ~latency () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ msg -> got := msg :: !got);
  for i = 1 to 50 do
    Network.send net ~src:0 ~dst:1 i
  done;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo order" (List.init 50 (fun i -> i + 1))
    (List.rev !got)

let test_cross_channel_reordering_possible () =
  (* a later message on a fast link can overtake an earlier one on a slow
     link: that is exactly what PRAM permits across channels *)
  let e = Engine.create () in
  let m = [| [| 0.; 100. |]; [| 1.; 0. |] |] in
  let net = Network.create e ~nodes:2 ~latency:(Latency.matrix m) () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src msg -> got := (src, msg) :: !got);
  Network.set_handler net 0 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 "slow";
  ignore (Engine.run e);
  Alcotest.(check (list (pair int string))) "slow arrives" [ (0, "slow") ] !got

let test_self_send_immediate () =
  let e, net = make () in
  let got = ref None in
  Network.set_handler net 0 (fun ~src msg -> got := Some (src, msg, Engine.now e));
  Network.send net ~src:0 ~dst:0 "self";
  ignore (Engine.run e);
  (match !got with
  | Some (0, "self", t) -> Alcotest.(check (float 1e-9)) "no latency" 0. t
  | _ -> Alcotest.fail "self delivery failed");
  check_int "self-sends are not network traffic" 0 (Network.messages_sent net)

let test_broadcast () =
  let e, net = make ~nodes:4 () in
  let received = Array.make 4 0 in
  for node = 0 to 3 do
    Network.set_handler net node (fun ~src:_ _ -> received.(node) <- received.(node) + 1)
  done;
  Network.broadcast net ~src:2 "hi";
  ignore (Engine.run e);
  Alcotest.(check (array int)) "everyone but sender" [| 1; 1; 0; 1 |] received;
  check_int "three messages" 3 (Network.messages_sent net)

let test_pause_resume () =
  let e, net = make () in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ msg -> got := msg :: !got);
  Network.pause_link net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 1;
  Network.send net ~src:0 ~dst:1 2;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "held while paused" [] !got;
  Network.resume_link net ~src:0 ~dst:1;
  ignore (Engine.run e);
  Alcotest.(check (list int)) "released in order" [ 1; 2 ] (List.rev !got)

let test_stats () =
  let e, net = make () in
  Network.set_handler net 1 (fun ~src:_ _ -> ());
  Network.send net ~src:0 ~dst:1 ~bytes:100 ~kind:"a" "x";
  Network.send net ~src:0 ~dst:1 ~bytes:50 ~kind:"b" "y";
  Network.send net ~src:0 ~dst:1 ~bytes:1 ~kind:"a" "z";
  ignore (Engine.run e);
  check_int "messages" 3 (Network.messages_sent net);
  check_int "bytes" 151 (Network.bytes_sent net);
  Alcotest.(check (list (pair string int)))
    "per kind"
    [ ("a", 2); ("b", 1) ]
    (Network.messages_by_kind net);
  Network.reset_stats net;
  check_int "reset messages" 0 (Network.messages_sent net);
  check_int "reset bytes" 0 (Network.bytes_sent net);
  Alcotest.(check (list (pair string int)))
    "reset kinds"
    [ ("a", 0); ("b", 0) ]
    (Network.messages_by_kind net)

let test_send_cost_serializes () =
  (* two sends from the same node depart 5 apart; the second delivery is
     therefore 5 later even though both were issued together *)
  let e, net = make ~latency:(Latency.constant 10.) ~send_cost:5. () in
  let times = ref [] in
  Network.set_handler net 1 (fun ~src:_ _ -> times := Engine.now e :: !times);
  Network.set_handler net 2 (fun ~src:_ _ -> times := Engine.now e :: !times);
  Network.send net ~src:0 ~dst:1 "a";
  Network.send net ~src:0 ~dst:2 "b";
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "staggered departures" [ 15.; 20. ]
    (List.sort compare !times)

let test_byte_cost () =
  let e, net = make ~latency:(Latency.constant 10.) ~byte_cost:0.5 () in
  let time = ref 0. in
  Network.set_handler net 1 (fun ~src:_ _ -> time := Engine.now e);
  Network.send net ~src:0 ~dst:1 ~bytes:20 "payload";
  ignore (Engine.run e);
  Alcotest.(check (float 1e-9)) "latency + bytes/bandwidth" 20. !time

let test_latency_models () =
  let rng = Mc_util.Rng.make 5 in
  let u = Latency.uniform rng ~lo:2. ~hi:4. in
  for _ = 1 to 100 do
    let s = Latency.sample u ~src:0 ~dst:1 in
    check "uniform in range" true (s >= 2. && s < 4.)
  done;
  let j = Latency.jitter (Latency.constant 10.) (Mc_util.Rng.make 6) ~spread:1. in
  for _ = 1 to 100 do
    let s = Latency.sample j ~src:0 ~dst:1 in
    check "jitter in range" true (s >= 10. && s < 11.)
  done;
  let m = Latency.matrix [| [| 0.; 7. |]; [| 3.; 0. |] |] in
  Alcotest.(check (float 1e-9)) "matrix src-dst" 7. (Latency.sample m ~src:0 ~dst:1);
  Alcotest.(check (float 1e-9)) "matrix dst-src" 3. (Latency.sample m ~src:1 ~dst:0)

let test_no_handler_error () =
  let e, net = make () in
  Network.send net ~src:0 ~dst:2 "orphan";
  match Engine.run e with
  | (_ : float) -> Alcotest.fail "expected missing-handler failure"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "mc_net"
    [
      ( "network",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "fifo per channel" `Quick test_fifo_per_channel;
          Alcotest.test_case "matrix latency delivery" `Quick test_cross_channel_reordering_possible;
          Alcotest.test_case "self send" `Quick test_self_send_immediate;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "pause/resume link" `Quick test_pause_resume;
          Alcotest.test_case "statistics" `Quick test_stats;
          Alcotest.test_case "sender occupancy" `Quick test_send_cost_serializes;
          Alcotest.test_case "byte cost" `Quick test_byte_cost;
          Alcotest.test_case "latency models" `Quick test_latency_models;
          Alcotest.test_case "missing handler" `Quick test_no_handler_error;
        ] );
    ]
