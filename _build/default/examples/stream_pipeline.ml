(* Producer/consumer streams (paper Section 1): the same bounded-buffer
   pipeline written twice - once with awaits (the model's intended
   primitive for producer/consumer interactions) and once with locks plus
   polling (what remains when awaits are missing).

   Run with: dune exec examples/stream_pipeline.exe -- [stages] [items] *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Pipeline = Mc_apps.Pipeline

let () =
  let stages = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let items = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 60 in
  let params = { Pipeline.items; slots = 4; work = 5.0 } in
  let expected = Pipeline.reference ~procs:stages params in
  Printf.printf
    "pipeline: %d stages, %d items, window of %d slots (checksum %d)\n\n" stages
    items params.Pipeline.slots expected.Pipeline.checksum;

  let outcomes =
    List.map
      (fun impl ->
        let engine = Engine.create () in
        let rt = Runtime.create engine (Config.default ~procs:stages) in
        let res = Pipeline.launch ~spawn:(Api.spawn rt) ~procs:stages ~impl params in
        let time = Runtime.run rt in
        let r = Option.get !res in
        let msgs = Mc_net.Network.messages_sent (Runtime.network rt) in
        Printf.printf "%-28s sim=%9.1fus msgs=%-5d throughput=%6.1f items/ms  %s\n"
          (Pipeline.impl_to_string impl)
          time msgs
          (float_of_int items /. time *. 1000.)
          (if r.Pipeline.checksum = expected.Pipeline.checksum then "exact"
           else "WRONG");
        time)
      [ Pipeline.Await_based; Pipeline.Lock_based ]
  in
  match outcomes with
  | [ t_await; t_lock ] ->
    Printf.printf
      "\nawaits are %.1fx faster: each hand-off is one update plus one flag write,\n\
       while the lock version pays a lock-manager round trip for every buffer\n\
       emptiness/fullness check (Sec. 1: awaits are \"useful for producer/consumer\n\
       type of interactions\").\n"
      (t_lock /. t_await)
  | _ -> assert false
