(* The Section-5.1 workload end to end: solve a random diagonally
   dominant system with the Figure-2 (barriers + PRAM) and Figure-3
   (handshaking + causal) programs, verify both against the sequential
   reference, and show what happens when Figure 3 is weakened to PRAM.

   Run with: dune exec examples/equation_solver.exe -- [n] [workers] *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Latency = Mc_net.Latency
module Solver = Mc_apps.Linear_solver
module Fixed = Mc_apps.Fixed
module Op = Mc_history.Op

let run ~procs ~variant ?await_label ?latency problem =
  let engine = Engine.create () in
  let cfg =
    match await_label with
    | Some l -> { (Config.default ~procs) with await_label = l }
    | None -> Config.default ~procs
  in
  let rt = Runtime.create engine ?latency cfg in
  let res = Solver.launch ~spawn:(Api.spawn rt) ~procs ~variant problem in
  let time = Runtime.run rt in
  (Option.get !res, time, Mc_net.Network.messages_sent (Runtime.network rt))

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 16 in
  let workers = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let procs = workers + 1 in
  let problem = Solver.Problem.generate ~seed:42 ~n in
  Printf.printf "solving a %dx%d diagonally dominant system with %d workers\n\n" n n
    workers;

  List.iter
    (fun variant ->
      let expected = Solver.reference ~variant problem in
      let result, time, msgs = run ~procs ~variant problem in
      Printf.printf "%-32s iters=%-3d converged=%-5b sim=%8.1fus msgs=%-6d %s\n"
        (Solver.variant_to_string variant)
        result.Solver.iterations result.Solver.converged time msgs
        (if result.Solver.x = expected.Solver.x then "matches reference exactly"
         else "DIVERGED from reference");
      if variant = Solver.Barrier_pram then begin
        let x0 = Fixed.to_float result.Solver.x.(0) in
        Printf.printf "  x[0] = %.4f, residual = %.4f\n" x0
          (Fixed.to_float (Solver.residual problem result.Solver.x))
      end)
    [ Solver.Barrier_pram; Solver.Handshake_causal ];

  (* the weakened variant, under latencies that make staleness visible:
     the coordinator is near every worker, workers are far apart *)
  print_newline ();
  let nodes = procs in
  let lat = Array.make_matrix nodes nodes 2000. in
  for i = 0 to nodes - 1 do
    lat.(i).(i) <- 0.;
    lat.(i).(0) <- 5.;
    lat.(0).(i) <- 5.
  done;
  let latency = Latency.matrix lat in
  let expected = Solver.reference ~variant:Solver.Handshake_causal problem in
  let weak, _, _ =
    run ~procs ~variant:Solver.Handshake_pram ~await_label:Op.PRAM ~latency problem
  in
  Printf.printf
    "%-32s iters=%-3d %s\n"
    (Solver.variant_to_string Solver.Handshake_pram)
    weak.Solver.iterations
    (if weak.Solver.x = expected.Solver.x then
       "matches (staleness did not bite this time)"
     else "diverged, as Section 5.1 warns: PRAM reads return inconsistent values");
  print_endline
    "\nthe causal variant is immune: Theorem 1 shows its histories are sequentially\n\
     consistent, so it always computes exactly the reference trajectory."
