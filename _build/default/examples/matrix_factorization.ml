(* The Section-5.3 workload: parallel sparse Cholesky factorization,
   comparing the Figure-5 lock-based algorithm with the counter-object
   algorithm that replaces critical sections by commuting decrements.

   Run with: dune exec examples/matrix_factorization.exe -- [n] [procs] *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Sparse = Mc_apps.Sparse_spd
module Cholesky = Mc_apps.Cholesky
module Fixed = Mc_apps.Fixed

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 24 in
  let procs = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 4 in
  let m = Sparse.generate ~seed:11 ~n ~density:0.2 in
  let lref = Sparse.factor_reference m in
  Printf.printf
    "sparse SPD matrix: n=%d, nnz(L)=%d after symbolic factorization\n"
    n (Sparse.nnz m);
  Printf.printf "sequential factor residual |L L^T - A|_max = %.5f\n\n"
    (Fixed.to_float (Sparse.verify m lref));

  let outcomes =
    List.map
      (fun variant ->
        let engine = Engine.create () in
        let rt = Runtime.create engine (Config.default ~procs) in
        let res = Cholesky.launch ~spawn:(Api.spawn rt) ~procs ~variant m in
        let time = Runtime.run rt in
        let r = Option.get !res in
        let msgs = Mc_net.Network.messages_sent (Runtime.network rt) in
        Printf.printf "%-28s sim=%10.1fus msgs=%-6d %s\n"
          (Cholesky.variant_to_string variant)
          time msgs
          (if r.Cholesky.l = lref then "factor matches reference exactly"
           else "factor DIFFERS");
        (variant, time))
      [ Cholesky.Lock_based; Cholesky.Counter_based ]
  in
  match outcomes with
  | [ (_, t_lock); (_, t_ctr) ] ->
    Printf.printf
      "\ncounter objects are %.2fx faster: every L[i][k] -= L[i][j]*L[k][j] update\n\
       and every count[k] decrement commutes, so the critical sections of Figure 5\n\
       (and their lock-manager round trips) disappear entirely (Section 5.3).\n"
      (t_lock /. t_ctr)
  | _ -> assert false
