(* The Section-5.2 workload: a 2-D electromagnetic field computation on
   strip-partitioned E/H grids, run on three different memory systems -
   the mixed-consistency DSM (PRAM reads + barriers), the directory-based
   write-invalidate SC memory, and the central-server SC memory - to show
   what weak consistency buys (paper Sections 1 and 5.2).

   Run with: dune exec examples/field_simulation.exe -- [procs] [steps] *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Api = Mc_dsm.Api
module Em = Mc_apps.Em_field

let () =
  let procs = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let steps = if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 8 in
  let params = { Em.rows = 4 * procs; cols = 8; steps; seed = 5 } in
  let expected = Em.reference ~procs params in
  Printf.printf "EM field: %dx%d grid, %d steps, %d processes (row strips)\n\n"
    params.Em.rows params.Em.cols steps procs;
  Printf.printf "sequential reference: checksum=%d energy=%d\n\n"
    expected.Em.checksum expected.Em.energy;

  let report name result time msgs bytes =
    let r : Em.result = Option.get !result in
    Printf.printf "%-28s sim=%10.1fus msgs=%-6d bytes=%-8d %s\n" name time msgs bytes
      (if r.Em.checksum = expected.Em.checksum then "exact" else "WRONG")
  in

  (* mixed consistency: the program is PRAM-consistent (Corollary 2), so
     updates need no vector timestamps either *)
  let engine = Engine.create () in
  let cfg = { (Config.default ~procs) with timestamped_updates = false } in
  let rt = Runtime.create engine cfg in
  let res = Em.launch ~spawn:(Api.spawn rt) ~procs params in
  let time = Runtime.run rt in
  let net = Runtime.network rt in
  report "mixed (PRAM + barriers)" res time
    (Mc_net.Network.messages_sent net)
    (Mc_net.Network.bytes_sent net);

  let engine = Engine.create () in
  let m = Mc_baselines.Sc_invalidate.create engine ~procs () in
  let res = Em.launch ~spawn:(Mc_baselines.Sc_invalidate.spawn m) ~procs params in
  let time = Mc_baselines.Sc_invalidate.run m in
  report "SC write-invalidate" res time
    (Mc_baselines.Sc_invalidate.messages_sent m)
    (Mc_baselines.Sc_invalidate.bytes_sent m);
  Printf.printf "  (cache hits: %d, misses: %d)\n"
    (Mc_baselines.Sc_invalidate.cache_hits m)
    (Mc_baselines.Sc_invalidate.cache_misses m);

  let engine = Engine.create () in
  let m = Mc_baselines.Sc_central.create engine ~procs () in
  let res = Em.launch ~spawn:(Mc_baselines.Sc_central.spawn m) ~procs params in
  let time = Mc_baselines.Sc_central.run m in
  report "SC central server" res time
    (Mc_baselines.Sc_central.messages_sent m)
    (Mc_baselines.Sc_central.bytes_sent m);

  print_endline
    "\nall three systems compute the identical field; the mixed-consistency DSM\n\
     shares only the strip-boundary rows (the \"ghost copies\" of Section 5.2)\n\
     and never blocks a read, which is where the speedup comes from."
