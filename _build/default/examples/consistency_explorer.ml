(* A tour of the consistency hierarchy through classic litmus histories,
   written in the history DSL and fed to the checkers. Shows exactly
   where PRAM, causal, mixed and sequential consistency separate
   (Sections 3 and 4 of the paper).

   Run with: dune exec examples/consistency_explorer.exe *)

module Dsl = Mc_history.Dsl
module History = Mc_history.History
module Causal = Mc_consistency.Causal
module Pram = Mc_consistency.Pram
module Mixed = Mc_consistency.Mixed
module Sequential = Mc_consistency.Sequential
module Commute = Mc_consistency.Commute

let verdict h =
  let sc =
    match Sequential.is_sequentially_consistent h with
    | Sequential.Consistent -> "SC"
    | Sequential.Inconsistent -> "not SC"
    | Sequential.Unknown -> "SC?"
  in
  Printf.sprintf "PRAM:%-3s causal:%-3s mixed:%-3s %s"
    (if Pram.is_pram_history h then "yes" else "no")
    (if Causal.is_causal_history h then "yes" else "no")
    (if Mixed.is_mixed_consistent h then "yes" else "no")
    sc

let show name description h =
  Printf.printf "%-34s %s\n" name (verdict h);
  Printf.printf "    %s\n\n" description

let () =
  print_endline "classic litmus histories under the paper's definitions:\n";

  show "store buffering (Dekker)"
    "both processes miss each other's write: allowed by causal memory, never by SC"
    (Dsl.make ~procs:2
       [ [ Dsl.w "x" 1; Dsl.rc "y" 0 ]; [ Dsl.w "y" 1; Dsl.rc "x" 0 ] ]);

  show "message passing, causal reads"
    "flag protocol: the causal read of x must see the write before the flag"
    (Dsl.make ~procs:2
       [ [ Dsl.w "x" 42; Dsl.w "flag" 1 ]; [ Dsl.rc "flag" 1; Dsl.rc "x" 42 ] ]);

  show "message passing, broken"
    "reading flag=1 but x=0 causally: rejected (the write to x is causally prior)"
    (Dsl.make ~procs:2
       [ [ Dsl.w "x" 42; Dsl.w "flag" 1 ]; [ Dsl.rc "flag" 1; Dsl.rc "x" 0 ] ]);

  show "transitive chain, PRAM reads"
    "p2 hears about y=2 from p1 but misses p0's x=1: fine for PRAM, not causal"
    (Dsl.make ~procs:3
       [
         [ Dsl.w "x" 1 ];
         [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
         [ Dsl.rp "y" 2; Dsl.rp "x" 0 ];
       ]);

  show "same chain, mixed labels"
    "labelling the stale read PRAM and the fresh one causal satisfies Definition 4"
    (Dsl.make ~procs:3
       [
         [ Dsl.w "x" 1 ];
         [ Dsl.rp "x" 1; Dsl.w "y" 2 ];
         [ Dsl.rc "y" 2; Dsl.rp "x" 0 ];
       ]);

  show "write order disagreement"
    "two observers see concurrent writes in opposite orders: causal yes, SC no"
    (Dsl.make ~procs:4
       [
         [ Dsl.w "x" 1 ];
         [ Dsl.w "x" 2 ];
         [ Dsl.rc "x" 1; Dsl.rc "x" 2 ];
         [ Dsl.rc "x" 2; Dsl.rc "x" 1 ];
       ]);

  show "FIFO violation"
    "reading one writer's values out of order: not even PRAM"
    (Dsl.make ~procs:2
       [ [ Dsl.w "x" 1; Dsl.w "x" 2 ]; [ Dsl.rp "x" 2; Dsl.rp "x" 1 ] ]);

  show "critical sections"
    "lock epochs order the accesses; causal reads inside make the history SC"
    (Dsl.make ~procs:2
       [
         [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
         [ Dsl.wl ~seq:2 "m"; Dsl.rc "x" 1; Dsl.w "x" 2; Dsl.wu ~seq:3 "m" ];
       ]);

  show "lock hand-off, PRAM read"
    "the third holder misses the first holder's write: PRAM sees only the previous holder (Sec. 6)"
    (Dsl.make ~procs:3
       [
         [ Dsl.wl ~seq:0 "m"; Dsl.w "x" 1; Dsl.wu ~seq:1 "m" ];
         [ Dsl.wl ~seq:2 "m"; Dsl.w "y" 2; Dsl.wu ~seq:3 "m" ];
         [ Dsl.wl ~seq:4 "m"; Dsl.rp "x" 0; Dsl.wu ~seq:5 "m" ];
       ]);

  show "barrier phases"
    "a pre-barrier write is visible to every post-barrier read, even PRAM ones"
    (Dsl.make ~procs:2
       [ [ Dsl.w "x" 1; Dsl.bar 0 ]; [ Dsl.bar 0; Dsl.rp "x" 1 ] ]);

  (* Theorem 1 in action *)
  let commuting =
    Dsl.make ~procs:2
      [ [ Dsl.w "a" 1; Dsl.rc "a" 1 ]; [ Dsl.w "b" 2; Dsl.rc "b" 2 ] ]
  in
  let report = Commute.theorem1_report commuting in
  Printf.printf
    "Theorem 1 check on a disjoint-variable history: %d non-commuting unrelated\n\
     pairs, %d non-causal reads -> the theorem applies, so it is sequentially\n\
     consistent without running the (exponential) SC search.\n"
    (List.length report.Commute.non_commuting_pairs)
    (List.length report.Commute.non_causal_reads)
