(* Quickstart: the mixed-consistency programming model in one page.

   Three processes share memory with PRAM and causal reads, a lock, a
   barrier and an await; afterwards the recorded history is checked
   against the formal definitions.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Mc_sim.Engine
module Runtime = Mc_dsm.Runtime
module Config = Mc_dsm.Config
module Op = Mc_history.Op

let () =
  let engine = Engine.create () in
  (* record = true keeps a history we can check afterwards *)
  let cfg = { (Config.default ~procs:3) with record = true } in
  let rt = Runtime.create engine cfg in

  (* process 0: a producer protected by a lock *)
  Runtime.spawn_process rt 0 (fun p ->
      Runtime.write_lock p "guard";
      Runtime.write p "config" 7;
      Runtime.write p "ready" 1;
      Runtime.write_unlock p "guard";
      Runtime.barrier p;
      Printf.printf "[p0] done at t=%.1fus\n" (Engine.now engine));

  (* process 1: waits for the flag, then reads causally - guaranteed to
     see every write that causally precedes the flag *)
  Runtime.spawn_process rt 1 (fun p ->
      Runtime.await p "ready" 1;
      let config = Runtime.read p ~label:Op.Causal "config" in
      Printf.printf "[p1] causal read of config after await: %d\n" config;
      Runtime.barrier p);

  (* process 2: PRAM reads are fast local reads with weaker guarantees -
     before any synchronization they may see stale values *)
  Runtime.spawn_process rt 2 (fun p ->
      let early = Runtime.read p ~label:Op.PRAM "config" in
      Printf.printf "[p2] early PRAM read of config: %d (may be stale)\n" early;
      Runtime.barrier p;
      let late = Runtime.read p ~label:Op.PRAM "config" in
      Printf.printf "[p2] PRAM read after the barrier: %d (guaranteed fresh)\n" late);

  let t_end = Runtime.run rt in
  Printf.printf "simulation finished at t=%.1fus, %d messages\n" t_end
    (Mc_net.Network.messages_sent (Runtime.network rt));

  (* check the recorded execution against the paper's definitions *)
  let h = Runtime.history rt in
  Printf.printf "history: %d operations, well-formed: %b\n"
    (Mc_history.History.length h)
    (Mc_history.History.is_well_formed h);
  Printf.printf "mixed consistent (Definition 4): %b\n"
    (Mc_consistency.Mixed.is_mixed_consistent h);
  match Mc_consistency.Sequential.is_sequentially_consistent h with
  | Mc_consistency.Sequential.Consistent ->
    print_endline "sequentially consistent: yes (a witness serialization exists)"
  | Inconsistent -> print_endline "sequentially consistent: no"
  | Unknown -> print_endline "sequentially consistent: unknown (search bound)"
