examples/quickstart.mli:
