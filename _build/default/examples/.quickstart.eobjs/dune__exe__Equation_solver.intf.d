examples/equation_solver.mli:
