examples/stream_pipeline.ml: Array List Mc_apps Mc_dsm Mc_net Mc_sim Option Printf Sys
