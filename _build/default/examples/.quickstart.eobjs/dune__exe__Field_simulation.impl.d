examples/field_simulation.ml: Array Mc_apps Mc_baselines Mc_dsm Mc_net Mc_sim Option Printf Sys
