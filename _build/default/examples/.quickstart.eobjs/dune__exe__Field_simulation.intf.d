examples/field_simulation.mli:
