examples/matrix_factorization.mli:
