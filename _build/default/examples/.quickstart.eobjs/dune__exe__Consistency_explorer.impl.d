examples/consistency_explorer.ml: List Mc_consistency Mc_history Printf
