examples/quickstart.ml: Mc_consistency Mc_dsm Mc_history Mc_net Mc_sim Printf
