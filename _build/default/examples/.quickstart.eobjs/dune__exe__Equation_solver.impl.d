examples/equation_solver.ml: Array List Mc_apps Mc_dsm Mc_history Mc_net Mc_sim Option Printf Sys
