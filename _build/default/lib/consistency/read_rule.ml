module History = Mc_history.History
module Op = Mc_history.Op
module Relation = Mc_util.Relation

type verdict = Valid | No_matching_write | Overwritten of int

let pp_verdict fmt = function
  | Valid -> Format.pp_print_string fmt "valid"
  | No_matching_write -> Format.pp_print_string fmt "no matching write"
  | Overwritten o -> Format.fprintf fmt "overwritten by op %d" o

(* Values an operation associates with location [loc]: what it writes
   there and what it observes there. *)
let values_at (o : Op.t) loc =
  let add acc = function
    | Some (l, v) when l = loc -> v :: acc
    | Some _ | None -> acc
  in
  add (add [] (Op.writes_value o)) (Op.reads_value o)

let check h rel ~read_id =
  let r = History.op h read_id in
  let loc, value =
    match r.kind with
    | Op.Read { loc; value; _ } -> (loc, value)
    | _ -> invalid_arg "Read_rule.check: not a memory read"
  in
  let ops = History.ops h in
  (* [interposed w] finds an operation o(x)u, u <> value, strictly between
     [w] and the read in [rel]. [w = None] stands for the virtual initial
     write, which precedes every operation. *)
  let interposed w =
    let found = ref None in
    Array.iter
      (fun (o : Op.t) ->
        if !found = None && o.id <> read_id && Some o.id <> w then
          let after_w =
            match w with None -> true | Some w_id -> Relation.mem rel w_id o.id
          in
          if after_w && Relation.mem rel o.id read_id then
            let bad = List.exists (fun u -> u <> value) (values_at o loc) in
            if bad then found := Some o.id)
      ops;
    !found
  in
  let candidate_writers =
    List.filter
      (fun w -> Relation.mem rel w read_id)
      (History.writers_of h loc value)
  in
  let try_writer w = match interposed (Some w) with None -> `Ok | Some o -> `Bad o in
  let rec first_valid = function
    | [] -> None
    | w :: rest -> (
      match try_writer w with `Ok -> Some w | `Bad _ -> first_valid rest)
  in
  match first_valid candidate_writers with
  | Some _ -> Valid
  | None -> (
    if value = History.initial_value h loc then
      (* virtual initial write *)
      match interposed None with None -> Valid | Some o -> Overwritten o
    else
      match candidate_writers with
      | [] -> No_matching_write
      | w :: _ -> (
        match try_writer w with
        | `Bad o -> Overwritten o
        | `Ok -> assert false))
