module History = Mc_history.History
module Op = Mc_history.Op
module Relation = Mc_util.Relation

type answer = Consistent | Inconsistent | Unknown

(* ------------------------------------------------------------------ *)
(* Replay machine                                                      *)
(* ------------------------------------------------------------------ *)

type machine = {
  memory : (Op.location, Op.value) Hashtbl.t;
  write_holder : (Op.lock_name, int) Hashtbl.t; (* lock -> holder proc *)
  read_holders : (Op.lock_name, int list) Hashtbl.t; (* lock -> reader procs *)
}

let machine_create () =
  {
    memory = Hashtbl.create 16;
    write_holder = Hashtbl.create 4;
    read_holders = Hashtbl.create 4;
  }

let mem_get m loc = Option.value ~default:0 (Hashtbl.find_opt m.memory loc)

(* [apply m op] steps the machine; returns [Error reason] if the operation
   is not enabled in the current state. Used both for full-order replay
   and incrementally during the search (with [undo] to backtrack). *)
type undo =
  | No_undo
  | Restore_value of Op.location * Op.value option
  | Restore_write_lock of Op.lock_name * int option
  | Restore_read_holders of Op.lock_name * int list

let apply ?(check_observed = true) m (op : Op.t) =
  let read_ok loc value what =
    let current = mem_get m loc in
    if current = value then Ok No_undo
    else
      Error
        (Printf.sprintf "%s %d: %s holds %d, operation expects %d" what op.id
           loc current value)
  in
  match op.kind with
  | Op.Read { loc; value; _ } -> read_ok loc value "read"
  | Op.Await { loc; value } -> read_ok loc value "await"
  | Op.Write { loc; value } ->
    let prev = Hashtbl.find_opt m.memory loc in
    Hashtbl.replace m.memory loc value;
    Ok (Restore_value (loc, prev))
  | Op.Decrement { loc; amount; observed } ->
    let current = mem_get m loc in
    if check_observed && current <> observed then
      Error
        (Printf.sprintf "decrement %d: %s holds %d, recorded pre-value %d"
           op.id loc current observed)
    else begin
      let prev = Hashtbl.find_opt m.memory loc in
      Hashtbl.replace m.memory loc (current - amount);
      Ok (Restore_value (loc, prev))
    end
  | Op.Write_lock l ->
    if Hashtbl.mem m.write_holder l then
      Error (Printf.sprintf "write lock %d: %s already write-held" op.id l)
    else if Option.value ~default:[] (Hashtbl.find_opt m.read_holders l) <> []
    then Error (Printf.sprintf "write lock %d: %s read-held" op.id l)
    else begin
      Hashtbl.replace m.write_holder l op.proc;
      Ok (Restore_write_lock (l, None))
    end
  | Op.Write_unlock l -> (
    match Hashtbl.find_opt m.write_holder l with
    | Some p when p = op.proc ->
      Hashtbl.remove m.write_holder l;
      Ok (Restore_write_lock (l, Some p))
    | Some _ | None ->
      Error (Printf.sprintf "write unlock %d: %s not held by process %d" op.id l op.proc))
  | Op.Read_lock l ->
    if Hashtbl.mem m.write_holder l then
      Error (Printf.sprintf "read lock %d: %s write-held" op.id l)
    else begin
      let holders = Option.value ~default:[] (Hashtbl.find_opt m.read_holders l) in
      Hashtbl.replace m.read_holders l (op.proc :: holders);
      Ok (Restore_read_holders (l, holders))
    end
  | Op.Read_unlock l -> (
    let holders = Option.value ~default:[] (Hashtbl.find_opt m.read_holders l) in
    if List.mem op.proc holders then begin
      let rec remove_one = function
        | [] -> []
        | p :: rest -> if p = op.proc then rest else p :: remove_one rest
      in
      Hashtbl.replace m.read_holders l (remove_one holders);
      Ok (Restore_read_holders (l, holders))
    end
    else
      Error (Printf.sprintf "read unlock %d: %s not read-held by process %d" op.id l op.proc))
  | Op.Barrier _ | Op.Barrier_group _ -> Ok No_undo

let rollback m = function
  | No_undo -> ()
  | Restore_value (loc, prev) -> (
    match prev with
    | Some v -> Hashtbl.replace m.memory loc v
    | None -> Hashtbl.remove m.memory loc)
  | Restore_write_lock (l, prev) -> (
    match prev with
    | Some p -> Hashtbl.replace m.write_holder l p
    | None -> Hashtbl.remove m.write_holder l)
  | Restore_read_holders (l, prev) -> Hashtbl.replace m.read_holders l prev

let replay ?check_observed h order =
  let n = History.length h in
  if List.length order <> n then Error "order is not a permutation: wrong length"
  else begin
    let seen = Array.make n false in
    let m = machine_create () in
    let rec go = function
      | [] -> Ok ()
      | id :: rest ->
        if id < 0 || id >= n then Error (Printf.sprintf "op id %d out of range" id)
        else if seen.(id) then Error (Printf.sprintf "op id %d repeated" id)
        else begin
          seen.(id) <- true;
          match apply ?check_observed m (History.op h id) with
          | Ok _ -> go rest
          | Error e -> Error e
        end
    in
    go order
  end

let respects_causality h order =
  let position = Hashtbl.create 64 in
  List.iteri (fun i id -> Hashtbl.replace position id i) order;
  let causality = History.causality h in
  let ok = ref (List.length order = History.length h) in
  Relation.fold causality
    (fun () a b ->
      match Hashtbl.find_opt position a, Hashtbl.find_opt position b with
      | Some pa, Some pb -> if pa >= pb then ok := false
      | _ -> ok := false)
    ();
  !ok

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

(* Memoized backtracking over linear extensions of the causality base
   relation (a total order extends the closure iff it extends the base).
   The memo key includes the scheduled set and the memory valuation,
   because the same set scheduled in different orders can leave different
   last writers. *)

exception Found of int list

let search ?(check_observed = true) ?(max_states = 200_000) h =
  let n = History.length h in
  if not (History.causality_is_acyclic h) then (None, Inconsistent)
  else begin
    let base =
      Relation.union (History.program_order h)
        (Relation.union (History.reads_from h) (History.sync_order h))
    in
    let preds = Array.init n (fun i -> Relation.predecessors base i) in
    let indeg = Array.make n 0 in
    Array.iteri (fun i ps -> indeg.(i) <- List.length ps) preds;
    let succs = Array.init n (fun i -> Relation.successors base i) in
    let scheduled = Array.make n false in
    let m = machine_create () in
    let visited = Hashtbl.create 4096 in
    let states = ref 0 in
    let exhausted = ref false in
    let key () =
      let buf = Buffer.create (n + 32) in
      Array.iter (fun b -> Buffer.add_char buf (if b then '1' else '0')) scheduled;
      let cells =
        Hashtbl.fold (fun loc v acc -> (loc, v) :: acc) m.memory []
        |> List.sort compare
      in
      List.iter (fun (loc, v) -> Buffer.add_string buf (Printf.sprintf "|%s=%d" loc v)) cells;
      Buffer.contents buf
    in
    let rec dfs depth prefix =
      if depth = n then raise (Found (List.rev prefix));
      let k = key () in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.add visited k ();
        incr states;
        if !states > max_states then exhausted := true
        else
          for id = 0 to n - 1 do
            if (not !exhausted) && (not scheduled.(id)) && indeg.(id) = 0 then begin
              match apply ~check_observed m (History.op h id) with
              | Ok undo ->
                scheduled.(id) <- true;
                List.iter (fun s -> indeg.(s) <- indeg.(s) - 1) succs.(id);
                dfs (depth + 1) (id :: prefix);
                List.iter (fun s -> indeg.(s) <- indeg.(s) + 1) succs.(id);
                scheduled.(id) <- false;
                rollback m undo
              | Error _ -> ()
            end
          done
      end
    in
    match dfs 0 [] with
    | () -> (None, if !exhausted then Unknown else Inconsistent)
    | exception Found order -> (Some order, Consistent)
  end

let witness ?check_observed ?max_states h = search ?check_observed ?max_states h

let is_sequentially_consistent ?check_observed ?max_states h =
  snd (search ?check_observed ?max_states h)
