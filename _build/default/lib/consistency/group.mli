(** Group-consistency checking — the Section-3.2 generalization.

    A group read by process [i] with group [G] (with [i ∈ G]) is valid
    when it satisfies the {!Read_rule} with respect to [⇝i,G]
    ({!Mc_history.History.group_relation}): causality is maintained
    across the members of [G] and reduces to FIFO order towards
    non-members. [G = [i]] is exactly a PRAM read; [G] = all processes is
    exactly a causal read — "PRAM reads and causal reads form the two
    end points of the spectrum". *)

type failure = { read_id : int; verdict : Read_rule.verdict }

(** [verdict h ~read_id ~group] checks one read against the group rule
    for the given member set (the reading process is taken from the
    operation and must belong to [group]). *)
val verdict : Mc_history.History.t -> read_id:int -> group:int list -> Read_rule.verdict

val is_group_read : Mc_history.History.t -> read_id:int -> group:int list -> bool

(** [failures h] checks every [Group]-labelled read against its own
    recorded group. *)
val failures : Mc_history.History.t -> failure list

val pp_failure : Format.formatter -> failure -> unit
