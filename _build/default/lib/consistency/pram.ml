module History = Mc_history.History
module Op = Mc_history.Op

type failure = { read_id : int; verdict : Read_rule.verdict }

let verdict h ~read_id =
  let proc = (History.op h read_id).Op.proc in
  Read_rule.check h (History.pram_relation h proc) ~read_id

let is_pram_read h ~read_id = verdict h ~read_id = Read_rule.Valid

let failures h =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      if Op.is_memory_read o then
        match verdict h ~read_id:o.id with
        | Read_rule.Valid -> ()
        | v -> acc := { read_id = o.id; verdict = v } :: !acc)
    (History.ops h);
  List.rev !acc

let is_pram_history h = failures h = []

let pp_failure fmt { read_id; verdict } =
  Format.fprintf fmt "read %d: %a" read_id Read_rule.pp_verdict verdict
