(** The common read-validity rule of Definitions 2 and 3.

    A read [r(x)v] by process [i] is valid with respect to a relation [R]
    (either [⇝i,C] or [⇝i,P]) iff there exists a write [w(x)v] with
    [w R r] and there is no read/write operation [o(x)u], [u ≠ v], with
    [w R o R r].

    Initial values are modelled as a virtual write of 0 to every location
    that precedes every operation; reading the initial value is therefore
    valid iff no operation [o(x)u] with [u ≠ 0] satisfies [o R r]. *)

type verdict =
  | Valid
  | No_matching_write  (** no write of the returned value is [R]-before the read *)
  | Overwritten of int
      (** the id of an operation [o(x)u] interposed between the matching
          write and the read *)

(** [check history relation ~read_id] applies the rule. [relation] must
    be a relation over the history's op ids (typically
    {!Mc_history.History.causal_relation} or [pram_relation]). Raises
    [Invalid_argument] if [read_id] is not a memory read. *)
val check : Mc_history.History.t -> Mc_util.Relation.t -> read_id:int -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
