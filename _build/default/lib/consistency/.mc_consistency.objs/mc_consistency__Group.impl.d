lib/consistency/group.ml: Array Format List Mc_history Read_rule
