lib/consistency/mixed.ml: Array Causal Format Group List Mc_history Pram Read_rule
