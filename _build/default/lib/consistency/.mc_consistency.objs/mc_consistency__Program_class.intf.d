lib/consistency/program_class.mli: Mc_history
