lib/consistency/mixed.mli: Format Mc_history Read_rule
