lib/consistency/program_class.ml: Array Hashtbl List Mc_history Option
