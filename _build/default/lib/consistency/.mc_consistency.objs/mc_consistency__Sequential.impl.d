lib/consistency/sequential.ml: Array Buffer Hashtbl List Mc_history Mc_util Option Printf
