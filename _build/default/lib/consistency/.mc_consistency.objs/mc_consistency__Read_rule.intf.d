lib/consistency/read_rule.mli: Format Mc_history Mc_util
