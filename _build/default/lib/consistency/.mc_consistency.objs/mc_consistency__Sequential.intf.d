lib/consistency/sequential.mli: Mc_history
