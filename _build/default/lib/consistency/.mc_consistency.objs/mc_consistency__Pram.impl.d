lib/consistency/pram.ml: Array Format List Mc_history Read_rule
