lib/consistency/read_rule.ml: Array Format List Mc_history Mc_util
