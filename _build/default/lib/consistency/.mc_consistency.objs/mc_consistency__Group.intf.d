lib/consistency/group.mli: Format Mc_history Read_rule
