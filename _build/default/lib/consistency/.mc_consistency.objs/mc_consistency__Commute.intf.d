lib/consistency/commute.mli: Causal Format Mc_history
