lib/consistency/causal.ml: Array Format List Mc_history Read_rule
