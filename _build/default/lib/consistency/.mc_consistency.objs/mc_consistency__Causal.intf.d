lib/consistency/causal.mli: Format Mc_history Read_rule
