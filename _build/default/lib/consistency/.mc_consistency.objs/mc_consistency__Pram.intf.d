lib/consistency/pram.mli: Format Mc_history Read_rule
