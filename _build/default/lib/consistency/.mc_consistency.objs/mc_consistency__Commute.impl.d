lib/consistency/commute.ml: Array Causal Format List Mc_history Mc_util
