(** PRAM memory checking (Definition 3).

    A read is a PRAM read when it is valid under {!Read_rule} with respect
    to [⇝i,P] — the PRAM order of the reading process, built from the
    transitive reduction of the synchronization orders restricted to edges
    involving that process. *)

type failure = { read_id : int; verdict : Read_rule.verdict }

val is_pram_read : Mc_history.History.t -> read_id:int -> bool
val verdict : Mc_history.History.t -> read_id:int -> Read_rule.verdict

(** [failures h] checks every memory read against the PRAM rule. *)
val failures : Mc_history.History.t -> failure list

(** [is_pram_history h] is true when all reads are PRAM reads. *)
val is_pram_history : Mc_history.History.t -> bool

val pp_failure : Format.formatter -> failure -> unit
