module History = Mc_history.History
module Op = Mc_history.Op

type lock_mode = Mode_read | Mode_write

type entry_violation = { op_id : int; loc : Op.location; reason : string }

type entry_result = {
  assignment : (Op.location * Op.lock_name) list;
  entry_violations : entry_violation list;
}

let loc_of_memory_op (o : Op.t) =
  match o.kind with
  | Op.Read { loc; _ } | Op.Write { loc; _ } | Op.Decrement { loc; _ } -> Some loc
  | Op.Await _ | Op.Read_lock _ | Op.Read_unlock _ | Op.Write_lock _
  | Op.Write_unlock _ | Op.Barrier _ | Op.Barrier_group _ ->
    None

let default_shared h =
  let accessors = Hashtbl.create 32 in
  Array.iter
    (fun (o : Op.t) ->
      match loc_of_memory_op o with
      | Some loc ->
        let procs =
          Option.value ~default:[] (Hashtbl.find_opt accessors loc)
        in
        if not (List.mem o.proc procs) then
          Hashtbl.replace accessors loc (o.proc :: procs)
      | None -> ())
    (History.ops h);
  fun loc ->
    match Hashtbl.find_opt accessors loc with
    | Some (_ :: _ :: _) -> true
    | Some _ | None -> false

(* Per-process scan, in invocation order, tracking which locks are held in
   which mode when each memory access is issued. *)
let accesses_with_held_locks h =
  let by_proc = Array.make (History.procs h) [] in
  Array.iter
    (fun (o : Op.t) -> by_proc.(o.proc) <- o :: by_proc.(o.proc))
    (History.ops h);
  let results = ref [] in
  Array.iter
    (fun ops_of_p ->
      let sorted =
        List.sort
          (fun (a : Op.t) (b : Op.t) -> compare a.inv_seq b.inv_seq)
          ops_of_p
      in
      let held = Hashtbl.create 4 in
      (* lock -> mode list (a stack; nesting not expected but harmless) *)
      let push l mode =
        Hashtbl.replace held l
          (mode :: Option.value ~default:[] (Hashtbl.find_opt held l))
      in
      let pop l =
        match Hashtbl.find_opt held l with
        | Some (_ :: rest) ->
          if rest = [] then Hashtbl.remove held l else Hashtbl.replace held l rest
        | Some [] | None -> ()
      in
      List.iter
        (fun (o : Op.t) ->
          match o.kind with
          | Op.Read_lock l -> push l Mode_read
          | Op.Write_lock l -> push l Mode_write
          | Op.Read_unlock l | Op.Write_unlock l -> pop l
          | _ -> (
            match loc_of_memory_op o with
            | Some loc ->
              let held_now =
                Hashtbl.fold (fun l modes acc -> (l, List.hd modes) :: acc) held []
              in
              results := (o, loc, held_now) :: !results
            | None -> ()))
        sorted)
    by_proc;
  List.rev !results

let check_entry_consistent ?shared h =
  let shared = match shared with Some f -> f | None -> default_shared h in
  let accesses = accesses_with_held_locks h in
  (* candidate locks per variable: intersection over accesses of the locks
     held with a sufficient mode *)
  let candidates : (Op.location, Op.lock_name list option ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let uncovered = ref [] in
  List.iter
    (fun ((o : Op.t), loc, held) ->
      if shared loc then begin
        let needs_write = Op.is_write_like o in
        let sufficient =
          List.filter_map
            (fun (l, mode) ->
              match mode, needs_write with
              | Mode_write, _ -> Some l
              | Mode_read, false -> Some l
              | Mode_read, true -> None)
            held
        in
        if sufficient = [] then
          uncovered :=
            {
              op_id = o.id;
              loc;
              reason =
                (if needs_write then "write access without a write lock"
                 else "read access without a lock");
            }
            :: !uncovered;
        let cell =
          match Hashtbl.find_opt candidates loc with
          | Some c -> c
          | None ->
            let c = ref None in
            Hashtbl.add candidates loc c;
            c
        in
        match !cell with
        | None -> cell := Some sufficient
        | Some prev -> cell := Some (List.filter (fun l -> List.mem l sufficient) prev)
      end)
    accesses;
  let assignment = ref [] in
  let violations = ref (List.rev !uncovered) in
  Hashtbl.iter
    (fun loc cell ->
      match !cell with
      | Some (l :: _) -> assignment := (loc, l) :: !assignment
      | Some [] | None ->
        violations :=
          { op_id = -1; loc; reason = "no single lock covers every access" }
          :: !violations)
    candidates;
  {
    assignment = List.sort compare !assignment;
    entry_violations = !violations;
  }

let is_entry_consistent ?shared h =
  (check_entry_consistent ?shared h).entry_violations = []

type phase_violation = {
  op_id : int;
  loc : Op.location;
  phase : int;
  reason : string;
}

let check_pram_consistent ?shared h =
  let shared = match shared with Some f -> f | None -> default_shared h in
  let by_proc = Array.make (History.procs h) [] in
  Array.iter
    (fun (o : Op.t) -> by_proc.(o.proc) <- o :: by_proc.(o.proc))
    (History.ops h);
  (* phase of each op: number of barriers before it in its process *)
  let phase_of = Hashtbl.create 64 in
  Array.iter
    (fun ops_of_p ->
      let sorted =
        List.sort
          (fun (a : Op.t) (b : Op.t) -> compare a.inv_seq b.inv_seq)
          ops_of_p
      in
      let phase = ref 0 in
      List.iter
        (fun (o : Op.t) ->
          Hashtbl.replace phase_of o.id !phase;
          match o.kind with
          | Op.Barrier _ | Op.Barrier_group _ -> incr phase
          | _ -> ())
        sorted)
    by_proc;
  let violations = ref [] in
  let report op_id loc phase reason = violations := { op_id; loc; phase; reason } :: !violations in
  (* group shared-variable accesses by (loc, phase) *)
  let groups : (Op.location * int, Op.t list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (o : Op.t) ->
      match loc_of_memory_op o with
      | Some loc when shared loc ->
        let phase = Hashtbl.find phase_of o.id in
        let key = (loc, phase) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        Hashtbl.replace groups key (o :: prev)
      | Some _ | None -> ())
    (History.ops h);
  Hashtbl.iter
    (fun (loc, phase) ops ->
      let writes = List.filter Op.is_write_like ops in
      let reads = List.filter (fun o -> not (Op.is_write_like o)) ops in
      (match writes with
      | [] | [ _ ] -> ()
      | w :: _ ->
        report w.Op.id loc phase "variable updated more than once in a phase");
      match writes with
      | [ (w : Op.t) ] ->
        List.iter
          (fun (r : Op.t) ->
            if r.proc <> w.proc then
              report r.id loc phase
                "read by another process in the phase the variable is written"
            else if r.inv_seq < w.resp_seq then
              report r.id loc phase "read precedes the same-phase update")
          reads
      | _ -> ())
    groups;
  List.sort compare !violations

let is_pram_consistent ?shared h = check_pram_consistent ?shared h = []
