(** Mixed consistency checking (Definition 4).

    A history is mixed consistent when every read labelled PRAM is a PRAM
    read and every read labelled Causal is a causal read. *)

type failure = {
  read_id : int;
  label : Mc_history.Op.label;
  verdict : Read_rule.verdict;
}

(** [failures h] checks each read against the rule selected by its
    label. *)
val failures : Mc_history.History.t -> failure list

val is_mixed_consistent : Mc_history.History.t -> bool

val pp_failure : Format.formatter -> failure -> unit
