(** Sequential consistency checking (Definition 1).

    A history is sequentially consistent if at least one of its
    serializations (total orders respecting the causality relation) is a
    sequential history: every read returns the value of the most recent
    write to that location, awaits observe the awaited value, decrements
    observe the current value, and the lock discipline holds.

    The membership problem is NP-hard in general; [is_sequentially_consistent]
    performs an exact memoized backtracking search and gives up with
    [Unknown] after a configurable state budget. *)

type answer = Consistent | Inconsistent | Unknown

(** [replay ?check_observed h order] replays the total order [order]
    (a permutation of op ids) and returns [Ok ()] if it is a sequential
    history, or [Error reason]. When [check_observed] is false (default
    true), the recorded pre-values of decrements are not required to match
    — used when decrements are treated as abstract commuting operations
    (Section 5.3). The order is not required to respect causality; use
    {!respects_causality} for that. *)
val replay : ?check_observed:bool -> Mc_history.History.t -> int list -> (unit, string) result

(** [respects_causality h order] checks that [order] is a serialization:
    a total order on all operations extending the causality relation. *)
val respects_causality : Mc_history.History.t -> int list -> bool

(** [is_sequentially_consistent ?check_observed ?max_states h] searches
    for a serialization that is a sequential history. [max_states]
    bounds the number of distinct search states visited (default
    200_000). *)
val is_sequentially_consistent :
  ?check_observed:bool -> ?max_states:int -> Mc_history.History.t -> answer

(** [witness ?check_observed ?max_states h] additionally returns the
    sequential serialization found, if any. *)
val witness :
  ?check_observed:bool ->
  ?max_states:int ->
  Mc_history.History.t ->
  int list option * answer
