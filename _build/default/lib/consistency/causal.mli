(** Causal memory checking (Definition 2).

    A history is causal when every memory read is a causal read — i.e.
    valid under {!Read_rule} with respect to [⇝i,C], the causality
    relation observable to the reading process. *)

type failure = { read_id : int; verdict : Read_rule.verdict }

(** [is_causal_read h ~read_id] checks one read against Definition 2. *)
val is_causal_read : Mc_history.History.t -> read_id:int -> bool

(** [verdict h ~read_id] is the detailed outcome for one read. *)
val verdict : Mc_history.History.t -> read_id:int -> Read_rule.verdict

(** [failures h] checks every memory read (regardless of its label) and
    returns those that are not causal reads. *)
val failures : Mc_history.History.t -> failure list

(** [is_causal_history h] is true when all reads are causal reads
    ("a history in which all reads are causal reads is called a causal
    history"). *)
val is_causal_history : Mc_history.History.t -> bool

val pp_failure : Format.formatter -> failure -> unit
