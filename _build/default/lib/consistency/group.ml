module History = Mc_history.History
module Op = Mc_history.Op

type failure = { read_id : int; verdict : Read_rule.verdict }

let verdict h ~read_id ~group =
  let reader = (History.op h read_id).Op.proc in
  Read_rule.check h (History.group_relation h ~reader ~group) ~read_id

let is_group_read h ~read_id ~group = verdict h ~read_id ~group = Read_rule.Valid

let failures h =
  let acc = ref [] in
  Array.iter
    (fun (o : Op.t) ->
      match o.kind with
      | Op.Read { label = Op.Group group; _ } -> (
        match verdict h ~read_id:o.id ~group with
        | Read_rule.Valid -> ()
        | v -> acc := { read_id = o.id; verdict = v } :: !acc)
      | _ -> ())
    (History.ops h);
  List.rev !acc

let pp_failure fmt { read_id; verdict } =
  Format.fprintf fmt "group read %d: %a" read_id Read_rule.pp_verdict verdict
