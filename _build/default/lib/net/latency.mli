(** Link latency models for the simulated network. *)

type t

(** [constant d] gives every message latency [d]. *)
val constant : float -> t

(** [uniform rng ~lo ~hi] samples each message latency uniformly from
    [lo, hi). The generator is owned by the model. *)
val uniform : Mc_util.Rng.t -> lo:float -> hi:float -> t

(** [matrix m] uses [m.(src).(dst)] as the fixed latency of each link. *)
val matrix : float array array -> t

(** [jitter base rng ~spread] adds uniform noise in [0, spread) on top of
    another model. *)
val jitter : t -> Mc_util.Rng.t -> spread:float -> t

(** [sample t ~src ~dst] draws the latency for one message. *)
val sample : t -> src:int -> dst:int -> float
