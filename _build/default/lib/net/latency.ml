type t =
  | Constant of float
  | Uniform of Mc_util.Rng.t * float * float
  | Matrix of float array array
  | Jitter of t * Mc_util.Rng.t * float

let constant d =
  if d < 0. then invalid_arg "Latency.constant: negative latency";
  Constant d

let uniform rng ~lo ~hi =
  if lo < 0. || hi < lo then invalid_arg "Latency.uniform: bad range";
  Uniform (rng, lo, hi)

let matrix m = Matrix m
let jitter base rng ~spread = Jitter (base, rng, spread)

let rec sample t ~src ~dst =
  match t with
  | Constant d -> d
  | Uniform (rng, lo, hi) -> Mc_util.Rng.float_in rng lo hi
  | Matrix m -> m.(src).(dst)
  | Jitter (base, rng, spread) ->
    sample base ~src ~dst +. Mc_util.Rng.float rng spread
