lib/net/latency.ml: Array Mc_util
