lib/net/network.ml: Array Float Latency List Mc_sim Mc_util Printf
