lib/net/latency.mli: Mc_util
