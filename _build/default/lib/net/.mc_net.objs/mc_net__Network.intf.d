lib/net/network.mli: Latency Mc_sim Mc_util
