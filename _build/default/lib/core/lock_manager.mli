(** Lock manager: grants read/write locks over named lock objects
    (Section 6: "Every lock is mapped to a process called the lock
    manager which accepts the requests for locking and unlocking").

    One manager instance runs at each node and manages the locks homed
    there. Requests are queued FIFO; read requests at the front of the
    queue are granted together. Each grant and unlock is stamped with a
    per-lock grant-order number — the [sync_seq] used to derive the
    [⤇lock] relation of the recorded history.

    The manager accumulates each releaser's applied-update counts into
    the lock's dependency clock and forwards it with every grant, which
    is the lazy-propagation scheme of Section 6; in demand mode it also
    accumulates and forwards critical-section write-sets. *)

type t

(** [create ~n ~demand ~send] builds a manager for [n] processes.
    [send ~dst msg] transmits a protocol message. [demand] selects
    demand-driven propagation (write-sets forwarded with grants). *)
val create : n:int -> demand:bool -> send:(dst:int -> Protocol.msg -> unit) -> t

(** [handle t ~src msg] processes a [Lock_request] or [Unlock_msg].
    Other messages raise [Invalid_argument]. *)
val handle : t -> src:int -> Protocol.msg -> unit

(** [grants_issued t] counts lock grants issued (for tests). *)
val grants_issued : t -> int
