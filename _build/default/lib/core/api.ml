type t = {
  proc_id : int;
  n_procs : int;
  read : ?label:Mc_history.Op.label -> Mc_history.Op.location -> int;
  write : Mc_history.Op.location -> int -> unit;
  init_counter : Mc_history.Op.location -> int -> unit;
  decrement : Mc_history.Op.location -> amount:int -> unit;
  read_lock : Mc_history.Op.lock_name -> unit;
  read_unlock : Mc_history.Op.lock_name -> unit;
  write_lock : Mc_history.Op.lock_name -> unit;
  write_unlock : Mc_history.Op.lock_name -> unit;
  barrier : unit -> unit;
  await : Mc_history.Op.location -> int -> unit;
  compute : float -> unit;
}

let of_proc p =
  {
    proc_id = Runtime.proc_id p;
    n_procs = (Runtime.config (Runtime.runtime_of_proc p)).Config.procs;
    read = (fun ?label loc -> Runtime.read p ?label loc);
    write = Runtime.write p;
    init_counter = Runtime.init_counter p;
    decrement = (fun loc ~amount -> Runtime.decrement p loc ~amount);
    read_lock = Runtime.read_lock p;
    read_unlock = Runtime.read_unlock p;
    write_lock = Runtime.write_lock p;
    write_unlock = Runtime.write_unlock p;
    barrier = (fun () -> Runtime.barrier p);
    await = Runtime.await p;
    compute = Runtime.compute p;
  }

let spawn rt i f = Runtime.spawn_process rt i (fun p -> f (of_proc p))
