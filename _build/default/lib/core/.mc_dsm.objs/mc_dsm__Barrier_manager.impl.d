lib/core/barrier_manager.ml: Array Fun Hashtbl List Printf Protocol
