lib/core/replica.mli: Mc_history Mc_sim Protocol
