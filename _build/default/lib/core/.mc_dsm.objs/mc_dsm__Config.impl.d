lib/core/config.ml: Format Mc_history
