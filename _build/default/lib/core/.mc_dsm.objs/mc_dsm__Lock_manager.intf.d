lib/core/lock_manager.mli: Protocol
