lib/core/protocol.mli: Mc_history
