lib/core/replica.ml: Array Hashtbl List Mc_history Mc_sim Protocol String
