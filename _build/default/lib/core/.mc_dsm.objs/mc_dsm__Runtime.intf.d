lib/core/runtime.mli: Config Mc_history Mc_net Mc_sim Mc_util Protocol
