lib/core/config.mli: Format Mc_history
