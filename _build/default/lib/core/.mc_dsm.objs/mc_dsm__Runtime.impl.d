lib/core/runtime.ml: Array Barrier_manager Config Hashtbl Lazy List Lock_manager Mc_history Mc_net Mc_sim Mc_util Option Printf Protocol Queue Replica String
