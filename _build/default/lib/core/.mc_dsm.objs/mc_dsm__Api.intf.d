lib/core/api.mli: Mc_history Runtime
