lib/core/lock_manager.ml: Array Hashtbl List Mc_history Printf Protocol
