lib/core/api.ml: Config Mc_history Runtime
