lib/core/barrier_manager.mli: Protocol
