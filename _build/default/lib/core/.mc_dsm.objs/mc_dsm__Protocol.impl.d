lib/core/protocol.ml: Mc_history
