module Engine = Mc_sim.Engine
module Network = Mc_net.Network
module Latency = Mc_net.Latency
module Op = Mc_history.Op
module Recorder = Mc_history.Recorder
module Summary = Mc_util.Stats.Summary
module Counters = Mc_util.Stats.Counters

(* Client-side state of one node, beyond the replica itself. *)
type node = {
  replica : Replica.t;
  (* FIFO queues of resolvers: several fibers of one process (the model
     allows multi-threaded processes, Section 3) may have requests in
     flight on the same lock object *)
  grant_waiters : (Op.lock_name, (Protocol.msg -> unit) Queue.t) Hashtbl.t;
  ack_waiters : (Op.lock_name, (int -> unit) Queue.t) Hashtbl.t;
  mutable flush_waiter : (int ref * (unit -> unit)) option;
      (* remaining acks, resume *)
  released : (int list * int, int array * int array) Hashtbl.t;
      (* (member set, episode) -> (dep, expect); [] means all processes *)
  mutable barrier_episode : int;
  subset_episodes : (int list, int ref) Hashtbl.t;
  sent_updates : int array; (* cumulative updates sent to each peer *)
  mutable open_write_sets :
    (Op.lock_name * (Op.location * int * int) list ref) list;
      (* (location, numeric, tag) written under each currently-held write
         lock: locations feed demand-mode invalidations, values feed
         entry-mode grants *)
}

type t = {
  engine : Engine.t;
  cfg : Config.t;
  net : Protocol.msg Network.t;
  nodes : node array;
  lock_managers : Lock_manager.t array;
  barrier_manager : Barrier_manager.t;
  recorder : Recorder.t option;
  mutable tag_counter : int;
  waits : (string, Summary.t) Hashtbl.t;
  ops : Counters.t;
}

type proc = { rt : t; id : int }

let engine t = t.engine
let config t = t.cfg
let network t = t.net
let proc t i = { rt = t; id = i }
let proc_id p = p.id
let runtime_of_proc p = p.rt

let lock_home t lock = Hashtbl.hash lock mod t.cfg.Config.procs

(* control messages that carry a dependency clock pay for it *)
let vc_bytes cfg = 8 * cfg.Config.procs

let update_wire_bytes cfg =
  cfg.Config.update_bytes
  + (if cfg.Config.timestamped_updates then vc_bytes cfg else 0)

let control_wire_bytes cfg msg =
  cfg.Config.control_bytes
  + (match msg with
    | Protocol.Lock_grant _ | Protocol.Unlock_msg _ | Protocol.Barrier_arrive _
    | Protocol.Barrier_release _ ->
      vc_bytes cfg
    | _ -> 0)
  + (* entry mode: guarded values ride the lock messages and pay for it *)
  (match msg with
  | Protocol.Lock_grant { values; _ } | Protocol.Unlock_msg { values; _ } ->
    16 * List.length values
  | _ -> 0)

let send t ~src ~dst ?(control = true) msg =
  let bytes =
    if control then control_wire_bytes t.cfg msg else update_wire_bytes t.cfg
  in
  Network.send t.net ~src ~dst ~bytes ~kind:(Protocol.kind msg) msg

let handle_message t node_id ~src msg =
  let node = t.nodes.(node_id) in
  match msg with
  | Protocol.Update u -> Replica.receive node.replica u
  | Protocol.Lock_request _ | Protocol.Unlock_msg _ ->
    Lock_manager.handle t.lock_managers.(node_id) ~src msg
  | Protocol.Lock_grant { lock; _ } -> (
    match Hashtbl.find_opt node.grant_waiters lock with
    | Some q when not (Queue.is_empty q) -> (Queue.pop q) msg
    | Some _ | None -> invalid_arg "Runtime: unexpected lock grant")
  | Protocol.Unlock_ack { lock; seq } -> (
    match Hashtbl.find_opt node.ack_waiters lock with
    | Some q when not (Queue.is_empty q) -> (Queue.pop q) seq
    | Some _ | None -> invalid_arg "Runtime: unexpected unlock ack")
  | Protocol.Flush_request { proc } ->
    (* FIFO channels: every update [proc] sent before this request has
       already been received here *)
    send t ~src:node_id ~dst:proc (Protocol.Flush_ack { proc = node_id })
  | Protocol.Flush_ack _ -> (
    match node.flush_waiter with
    | Some (remaining, resume) ->
      decr remaining;
      if !remaining = 0 then begin
        node.flush_waiter <- None;
        resume ()
      end
    | None -> invalid_arg "Runtime: unexpected flush ack")
  | Protocol.Barrier_arrive _ ->
    Barrier_manager.handle t.barrier_manager ~src msg
  | Protocol.Barrier_release { episode; dep; members; expect } ->
    Hashtbl.replace node.released (members, episode) (dep, expect);
    Replica.notify node.replica

let create engine ?latency cfg =
  let n = cfg.Config.procs in
  let latency =
    match latency with
    | Some l -> l
    | None -> Latency.uniform (Mc_util.Rng.make 0xC0FFEE) ~lo:30. ~hi:70.
  in
  let net =
    Network.create engine ~nodes:n ~latency ~send_cost:cfg.Config.send_cost
      ~byte_cost:cfg.Config.byte_cost ()
  in
  let rec t =
    lazy
      (let send_from home ~dst msg =
         send (Lazy.force t) ~src:home ~dst msg
       in
       {
         engine;
         cfg;
         net;
         nodes =
           Array.init n (fun id ->
               {
                 replica =
                   Replica.create engine ~id ~n ~groups:cfg.Config.groups
                     ~causal_delivery:(cfg.Config.multicast = None) ();
                 grant_waiters = Hashtbl.create 4;
                 ack_waiters = Hashtbl.create 4;
                 flush_waiter = None;
                 released = Hashtbl.create 8;
                 barrier_episode = 0;
                 subset_episodes = Hashtbl.create 4;
                 sent_updates = Array.make n 0;
                 open_write_sets = [];
               });
         lock_managers =
           Array.init n (fun home ->
               Lock_manager.create ~n
                 ~demand:(cfg.Config.propagation = Config.Demand)
                 ~send:(send_from home));
         barrier_manager = Barrier_manager.create ~n ~send:(send_from 0);
         recorder =
           (if cfg.Config.record then Some (Recorder.create ~procs:n) else None);
         tag_counter = 0;
         waits = Hashtbl.create 8;
         ops = Counters.create ();
       })
  in
  let t = Lazy.force t in
  for node_id = 0 to n - 1 do
    Network.set_handler net node_id (fun ~src msg -> handle_message t node_id ~src msg)
  done;
  t

let run t = Engine.run t.engine

let spawn_process t i f =
  Engine.spawn t.engine ~name:(Printf.sprintf "proc-%d" i) (fun () ->
      f (proc t i))

let spawn_thread t i f =
  (* an additional fiber of process [i]: shares its replica and recorder,
     so the recorded local history becomes a genuine partial order
     (Section 3 models intra-process concurrency) *)
  Engine.spawn t.engine ~name:(Printf.sprintf "proc-%d-thread" i) (fun () ->
      f (proc t i))

(* ------------------------------------------------------------------ *)
(* Instrumentation helpers                                             *)
(* ------------------------------------------------------------------ *)

let note_wait t name dt =
  let s =
    match Hashtbl.find_opt t.waits name with
    | Some s -> s
    | None ->
      let s = Summary.create () in
      Hashtbl.add t.waits name s;
      s
  in
  Summary.add s dt

let timed p name f =
  let t0 = Engine.now p.rt.engine in
  let r = f () in
  note_wait p.rt name (Engine.now p.rt.engine -. t0);
  r

let charge p = Engine.delay p.rt.engine p.rt.cfg.Config.op_cost

let record p kind = Option.map (fun r -> Recorder.record r ~proc:p.id kind) p.rt.recorder

let record_start p = Option.map (fun r -> Recorder.start r ~proc:p.id) p.rt.recorder

let record_finish p token ?sync_seq kind =
  match p.rt.recorder, token with
  | Some r, Some tok -> ignore (Recorder.finish r tok ?sync_seq kind)
  | _ -> ()

let fresh_tag p =
  p.rt.tag_counter <- p.rt.tag_counter + 1;
  ((p.id + 1) lsl 40) lor p.rt.tag_counter

(* ------------------------------------------------------------------ *)
(* Memory operations                                                   *)
(* ------------------------------------------------------------------ *)

let recorded_value ~numeric ~tag = if tag <> 0 then tag else numeric

let read p ?(label = Op.Causal) loc =
  Counters.incr p.rt.ops "read";
  charge p;
  let node = p.rt.nodes.(p.id) in
  timed p "read" (fun () ->
      (* demand mode: reads of invalidated locations block until the
         pending updates are applied *)
      Replica.wait_until node.replica (fun () ->
          not (Replica.location_blocked node.replica loc));
      let numeric, tag =
        match label with
        | Op.Causal ->
          if p.rt.cfg.Config.multicast <> None then
            invalid_arg
              "Runtime.read: causal reads are unavailable under multicast routing";
          Replica.causal_read node.replica loc
        | Op.PRAM -> Replica.pram_read node.replica loc
        | Op.Group group ->
          if p.rt.cfg.Config.multicast <> None then
            invalid_arg
              "Runtime.read: group reads are unavailable under multicast routing";
          if not (List.mem p.id group) then
            invalid_arg "Runtime.read: process is not a member of the read group";
          Replica.group_read node.replica ~group loc
      in
      ignore
        (record p (Op.Read { loc; label; value = recorded_value ~numeric ~tag }));
      numeric)

let broadcast_update p (u : Protocol.update) =
  let node = p.rt.nodes.(p.id) in
  let bytes = update_wire_bytes p.rt.cfg in
  let kind = Protocol.kind (Protocol.Update u) in
  let send_to dst =
    if dst <> p.id then begin
      node.sent_updates.(dst) <- node.sent_updates.(dst) + 1;
      Network.send p.rt.net ~src:p.id ~dst ~bytes ~kind (Protocol.Update u)
    end
  in
  match p.rt.cfg.Config.multicast with
  | None ->
    for dst = 0 to p.rt.cfg.Config.procs - 1 do
      send_to dst
    done
  | Some subscribers -> (
    match subscribers u.loc with
    | None ->
      for dst = 0 to p.rt.cfg.Config.procs - 1 do
        send_to dst
      done
    | Some subs -> List.iter send_to (List.sort_uniq compare subs))

let track_write_set p loc ~numeric ~tag =
  let node = p.rt.nodes.(p.id) in
  List.iter
    (fun (_, log) ->
      log := (loc, numeric, tag) :: List.filter (fun (l, _, _) -> l <> loc) !log)
    node.open_write_sets

(* entry mode: is this process inside a write critical section? *)
let in_entry_section p =
  p.rt.cfg.Config.propagation = Config.Entry
  && p.rt.nodes.(p.id).open_write_sets <> []

let write p loc v =
  Counters.incr p.rt.ops "write";
  charge p;
  let node = p.rt.nodes.(p.id) in
  let tag = fresh_tag p in
  ignore (record p (Op.Write { loc; value = tag }));
  if in_entry_section p then begin
    (* guarded write: install locally and ship with the unlock instead of
       broadcasting (entry consistency) *)
    Replica.install_direct node.replica ~loc ~numeric:v ~tag;
    track_write_set p loc ~numeric:v ~tag
  end
  else begin
    let u = Replica.local_write node.replica ~loc ~numeric:v ~tag in
    track_write_set p loc ~numeric:v ~tag;
    broadcast_update p u
  end

let init_counter p loc v =
  Counters.incr p.rt.ops "init_counter";
  charge p;
  let node = p.rt.nodes.(p.id) in
  ignore (record p (Op.Write { loc; value = v }));
  (* tag 0 marks the location as numerically recorded *)
  if in_entry_section p then begin
    Replica.install_direct node.replica ~loc ~numeric:v ~tag:0;
    track_write_set p loc ~numeric:v ~tag:0
  end
  else begin
    let u = Replica.local_write node.replica ~loc ~numeric:v ~tag:0 in
    track_write_set p loc ~numeric:v ~tag:0;
    broadcast_update p u
  end

let decrement p loc ~amount =
  Counters.incr p.rt.ops "decrement";
  charge p;
  let node = p.rt.nodes.(p.id) in
  if in_entry_section p then begin
    let observed, _ = Replica.causal_read node.replica loc in
    ignore (record p (Op.Decrement { loc; amount; observed }));
    Replica.install_direct node.replica ~loc ~numeric:(observed - amount) ~tag:0;
    track_write_set p loc ~numeric:(observed - amount) ~tag:0
  end
  else begin
    let u, observed = Replica.local_dec node.replica ~loc ~amount in
    ignore (record p (Op.Decrement { loc; amount; observed }));
    track_write_set p loc ~numeric:(observed - amount) ~tag:0;
    broadcast_update p u
  end

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)
(* ------------------------------------------------------------------ *)

let acquire p lock ~write =
  if p.rt.cfg.Config.multicast <> None then
    invalid_arg
      "Runtime: locks are unavailable under multicast routing (use barriers; \
       the mode is for PRAM-consistent programs)";
  Counters.incr p.rt.ops (if write then "write_lock" else "read_lock");
  charge p;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  timed p
    (if write then "write_lock" else "read_lock")
    (fun () ->
      send p.rt ~src:p.id ~dst:(lock_home p.rt lock)
        (Protocol.Lock_request { proc = p.id; lock; write });
      let grant =
        Engine.suspend p.rt.engine (fun resume ->
            let q =
              match Hashtbl.find_opt node.grant_waiters lock with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.add node.grant_waiters lock q;
                q
            in
            Queue.push resume q)
      in
      match grant with
      | Protocol.Lock_grant { seq; dep; invalid; values; _ } ->
        (match p.rt.cfg.Config.propagation with
        | Config.Eager | Config.Lazy ->
          (* wait for the previous holders' updates to be applied *)
          Replica.wait_until node.replica (fun () ->
              Replica.dep_satisfied node.replica dep)
        | Config.Demand ->
          (* enter immediately; only reads of the written locations wait *)
          List.iter
            (fun (loc, d) -> Replica.mark_invalid node.replica loc d)
            invalid
        | Config.Entry ->
          (* the guarded variables' current values arrived with the grant *)
          List.iter
            (fun (loc, numeric, tag) ->
              Replica.install_direct node.replica ~loc ~numeric ~tag)
            values);
        if write then node.open_write_sets <- (lock, ref []) :: node.open_write_sets;
        record_finish p token ~sync_seq:seq
          (if write then Op.Write_lock lock else Op.Read_lock lock)
      | _ -> assert false)

let release p lock ~write =
  Counters.incr p.rt.ops (if write then "write_unlock" else "read_unlock");
  charge p;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  timed p
    (if write then "write_unlock" else "read_unlock")
    (fun () ->
      (* eager propagation: flush all our updates everywhere first *)
      (if p.rt.cfg.Config.propagation = Config.Eager && p.rt.cfg.Config.procs > 1
       then begin
         Network.broadcast p.rt.net ~src:p.id ~bytes:p.rt.cfg.Config.control_bytes
           ~kind:"flush_request"
           (Protocol.Flush_request { proc = p.id });
         Engine.suspend p.rt.engine (fun resume ->
             node.flush_waiter <-
               Some (ref (p.rt.cfg.Config.procs - 1), fun () -> resume ()))
       end);
      let written =
        if write then begin
          match List.assoc_opt lock node.open_write_sets with
          | Some log ->
            node.open_write_sets <-
              List.filter (fun (l, _) -> l <> lock) node.open_write_sets;
            !log
          | None -> []
        end
        else []
      in
      send p.rt ~src:p.id ~dst:(lock_home p.rt lock)
        (Protocol.Unlock_msg
           {
             proc = p.id;
             lock;
             write;
             vc = Replica.applied node.replica;
             write_set = List.map (fun (l, _, _) -> l) written;
             values =
               (if p.rt.cfg.Config.propagation = Config.Entry then written
                else []);
           });
      let seq =
        Engine.suspend p.rt.engine (fun resume ->
            let q =
              match Hashtbl.find_opt node.ack_waiters lock with
              | Some q -> q
              | None ->
                let q = Queue.create () in
                Hashtbl.add node.ack_waiters lock q;
                q
            in
            Queue.push resume q)
      in
      record_finish p token ~sync_seq:seq
        (if write then Op.Write_unlock lock else Op.Read_unlock lock))

let write_lock p lock = acquire p lock ~write:true
let write_unlock p lock = release p lock ~write:true
let read_lock p lock = acquire p lock ~write:false
let read_unlock p lock = release p lock ~write:false

(* ------------------------------------------------------------------ *)
(* Barrier and await                                                   *)
(* ------------------------------------------------------------------ *)

let barrier_generic p ~members ~episode ~kind =
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let multicast = p.rt.cfg.Config.multicast <> None in
  timed p "barrier" (fun () ->
      send p.rt ~src:p.id ~dst:0
        (Protocol.Barrier_arrive
           {
             proc = p.id;
             episode;
             vc = Replica.applied node.replica;
             members;
             sent = (if multicast then Array.copy node.sent_updates else [||]);
           });
      Replica.wait_until node.replica (fun () ->
          match Hashtbl.find_opt node.released (members, episode) with
          | Some (dep, expect) ->
            if expect = [||] then Replica.dep_satisfied node.replica dep
            else begin
              (* Section 6's count scheme: proceed once this node has
                 received as many updates from each peer as the barrier
                 manager counted *)
              let received = Replica.received node.replica in
              let ok = ref true in
              Array.iteri (fun j c -> if received.(j) < c then ok := false) expect;
              !ok
            end
          | None -> false);
      Hashtbl.remove node.released (members, episode);
      record_finish p token kind)

let barrier p =
  Counters.incr p.rt.ops "barrier";
  charge p;
  let node = p.rt.nodes.(p.id) in
  let episode = node.barrier_episode in
  node.barrier_episode <- episode + 1;
  barrier_generic p ~members:[] ~episode ~kind:(Op.Barrier episode)

let barrier_subset p members =
  Counters.incr p.rt.ops "barrier_subset";
  charge p;
  let members = List.sort_uniq compare members in
  if not (List.mem p.id members) then
    invalid_arg "Runtime.barrier_subset: calling process must be a member";
  let node = p.rt.nodes.(p.id) in
  let counter =
    match Hashtbl.find_opt node.subset_episodes members with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add node.subset_episodes members r;
      r
  in
  let episode = !counter in
  incr counter;
  barrier_generic p ~members ~episode
    ~kind:(Op.Barrier_group { episode; members })

let await p loc v =
  Counters.incr p.rt.ops "await";
  charge p;
  let node = p.rt.nodes.(p.id) in
  let token = record_start p in
  let view () =
    if p.rt.cfg.Config.multicast <> None then Replica.pram_read node.replica loc
    else
      match p.rt.cfg.Config.await_label with
      | Op.Causal -> Replica.causal_read node.replica loc
      | Op.PRAM -> Replica.pram_read node.replica loc
      | Op.Group group -> Replica.group_read node.replica ~group loc
  in
  timed p "await" (fun () ->
      Replica.wait_until node.replica (fun () -> fst (view ()) = v);
      let numeric, tag = view () in
      record_finish p token
        (Op.Await { loc; value = recorded_value ~numeric ~tag }))

let compute p cost =
  Counters.incr p.rt.ops "compute";
  Engine.delay p.rt.engine cost

(* ------------------------------------------------------------------ *)
(* Results and statistics                                              *)
(* ------------------------------------------------------------------ *)

let history t =
  match t.recorder with
  | Some r -> Recorder.history r
  | None -> invalid_arg "Runtime.history: recording is disabled"

let peek t ~proc loc = fst (Replica.causal_read t.nodes.(proc).replica loc)

let wait_summaries t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.waits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let op_counts t = Counters.to_list t.ops
