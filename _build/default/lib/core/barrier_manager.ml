type episode_state = { arrived : bool array; mutable count : int; dep : int array }

(* episodes are keyed by (member set, episode number); the empty member
   set denotes a barrier over all processes *)
type t = {
  n : int;
  send : dst:int -> Protocol.msg -> unit;
  episodes : (int list * int, episode_state) Hashtbl.t;
  (* multicast mode: sent_matrix.(j).(i) is the cumulative number of
     updates process j reports having sent to process i - the Section-6
     count vectors *)
  sent_matrix : int array array;
  mutable counts_mode : bool;
  mutable released : int;
}

let create ~n ~send =
  {
    n;
    send;
    episodes = Hashtbl.create 8;
    sent_matrix = Array.make_matrix n n 0;
    counts_mode = false;
    released = 0;
  }

let state t key =
  match Hashtbl.find_opt t.episodes key with
  | Some s -> s
  | None ->
    let s = { arrived = Array.make t.n false; count = 0; dep = Array.make t.n 0 } in
    Hashtbl.add t.episodes key s;
    s

let handle t ~src msg =
  match msg with
  | Protocol.Barrier_arrive { proc; episode; vc; members; sent } ->
    if proc <> src then invalid_arg "Barrier_manager: forged arrival origin";
    let members = List.sort_uniq compare members in
    if members <> [] && not (List.mem proc members) then
      invalid_arg "Barrier_manager: arrival from a non-member";
    let expected = if members = [] then t.n else List.length members in
    let s = state t (members, episode) in
    if s.arrived.(proc) then
      invalid_arg
        (Printf.sprintf "Barrier_manager: process %d arrived twice at episode %d"
           proc episode);
    s.arrived.(proc) <- true;
    s.count <- s.count + 1;
    Array.iteri (fun i v -> if v > s.dep.(i) then s.dep.(i) <- v) vc;
    if sent <> [||] then begin
      t.counts_mode <- true;
      Array.iteri (fun i v -> t.sent_matrix.(proc).(i) <- max t.sent_matrix.(proc).(i) v) sent
    end;
    if s.count = expected then begin
      t.released <- t.released + 1;
      Hashtbl.remove t.episodes (members, episode);
      let recipients =
        if members = [] then List.init t.n Fun.id else members
      in
      List.iter
        (fun dst ->
          (* in counts mode, tell each process how many updates from each
             peer it must have received before proceeding *)
          let expect =
            if t.counts_mode then Array.init t.n (fun j -> t.sent_matrix.(j).(dst))
            else [||]
          in
          t.send ~dst
            (Protocol.Barrier_release
               { episode; dep = Array.copy s.dep; members; expect }))
        recipients
    end
  | _ -> invalid_arg "Barrier_manager.handle: unexpected message"

let episodes_released t = t.released
