(** Wire protocol of the mixed-consistency DSM (Section 6).

    All node-to-node traffic is one of these messages. Updates carry the
    writer's dependency clock for causal delivery; lock and barrier
    control messages carry dependency clocks so grantees and barrier
    leavers know which updates must be applied before they proceed. *)

(** A propagated write or decrement. *)
type update = {
  writer : int;
  useq : int;  (** per-writer update sequence number, starting at 1 *)
  dep : int array;
      (** applied-update counts per process at the writer when the update
          was issued; [dep.(writer) = useq - 1] *)
  loc : Mc_history.Op.location;
  numeric : Mc_history.Op.value;
      (** the application-level value (for decrements, the amount) *)
  tag : int;
      (** globally unique identity of the installed value, used for exact
          reads-from recording; [0] for decrements *)
  is_dec : bool;
}

type msg =
  | Update of update
  | Lock_request of { proc : int; lock : Mc_history.Op.lock_name; write : bool }
  | Lock_grant of {
      lock : Mc_history.Op.lock_name;
      write : bool;
      seq : int;  (** manager grant-order number for the lock operation *)
      dep : int array;  (** updates the grantee must apply before entering *)
      invalid : (Mc_history.Op.location * int array) list;
          (** demand mode: locations whose reads must wait for [dep] *)
      values : (Mc_history.Op.location * int * int) list;
          (** entry mode: current values of the lock's guarded variables,
              installed at the grantee before it enters *)
    }
  | Unlock_msg of {
      proc : int;
      lock : Mc_history.Op.lock_name;
      write : bool;
      vc : int array;  (** the releaser's applied-update counts *)
      write_set : Mc_history.Op.location list;
      values : (Mc_history.Op.location * int * int) list;
          (** entry mode: (location, numeric, tag) of every value written
              in the critical section, to ride the next grant *)
    }
  | Unlock_ack of { lock : Mc_history.Op.lock_name; seq : int }
  | Flush_request of { proc : int }
  | Flush_ack of { proc : int }
  | Barrier_arrive of {
      proc : int;
      episode : int;
      vc : int array;
      members : int list;  (** empty means all processes *)
      sent : int array;
          (** multicast mode: cumulative update counts this process has
              sent to each peer (Section 6's count vectors); empty when
              vector timestamps are in use *)
    }
  | Barrier_release of {
      episode : int;
      dep : int array;
      members : int list;
      expect : int array;
          (** multicast mode: cumulative update counts the receiver must
              have received from each peer before leaving the barrier;
              empty when vector timestamps are in use *)
    }

(** [kind msg] is a short label for per-kind message statistics. *)
val kind : msg -> string
