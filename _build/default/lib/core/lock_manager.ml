type request = { proc : int; write : bool }

type lock_state = {
  mutable writer : int option;
  mutable readers : int list; (* multiset of reader process ids *)
  mutable queue : request list; (* FIFO, head first *)
  mutable seq : int; (* next grant-order number *)
  mutable dep : int array; (* accumulated release clock *)
  invalid : (Mc_history.Op.location, int array) Hashtbl.t;
      (* demand mode: write-set entries not yet known globally applied *)
  guarded : (Mc_history.Op.location, int * int) Hashtbl.t;
      (* entry mode: current (numeric, tag) of the lock's guarded
         variables, updated from each write unlock *)
}

type t = {
  n : int;
  demand : bool;
  send : dst:int -> Protocol.msg -> unit;
  locks : (Mc_history.Op.lock_name, lock_state) Hashtbl.t;
  mutable grants : int;
}

let create ~n ~demand ~send =
  { n; demand; send; locks = Hashtbl.create 8; grants = 0 }

let state t lock =
  match Hashtbl.find_opt t.locks lock with
  | Some s -> s
  | None ->
    let s =
      {
        writer = None;
        readers = [];
        queue = [];
        seq = 0;
        dep = Array.make t.n 0;
        invalid = Hashtbl.create 4;
        guarded = Hashtbl.create 4;
      }
    in
    Hashtbl.add t.locks lock s;
    s

let next_seq s =
  let seq = s.seq in
  s.seq <- seq + 1;
  seq

let invalid_list s =
  Hashtbl.fold (fun loc dep acc -> (loc, Array.copy dep) :: acc) s.invalid []

let guarded_list s =
  Hashtbl.fold (fun loc (numeric, tag) acc -> (loc, numeric, tag) :: acc) s.guarded []

let grant t lock s (r : request) =
  t.grants <- t.grants + 1;
  if r.write then s.writer <- Some r.proc else s.readers <- r.proc :: s.readers;
  let invalid = if t.demand then invalid_list s else [] in
  t.send ~dst:r.proc
    (Protocol.Lock_grant
       {
         lock;
         write = r.write;
         seq = next_seq s;
         dep = Array.copy s.dep;
         invalid;
         values = guarded_list s;
       })

(* Grant from the front of the queue while possible: a write request needs
   the lock completely free; read requests are granted as long as no
   writer holds it (strict FIFO, so a queued write request blocks later
   read requests — no writer starvation). *)
let rec try_grant t lock s =
  match s.queue with
  | [] -> ()
  | r :: rest ->
    if r.write then begin
      if s.writer = None && s.readers = [] then begin
        s.queue <- rest;
        grant t lock s r
      end
    end
    else if s.writer = None then begin
      s.queue <- rest;
      grant t lock s r;
      try_grant t lock s
    end

let merge_dep dst src =
  Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src

let handle t ~src msg =
  match msg with
  | Protocol.Lock_request { proc; lock; write } ->
    if proc <> src then invalid_arg "Lock_manager: forged request origin";
    let s = state t lock in
    s.queue <- s.queue @ [ { proc; write } ];
    try_grant t lock s
  | Protocol.Unlock_msg { proc; lock; write; vc; write_set; values } ->
    let s = state t lock in
    (if write then
       match s.writer with
       | Some p when p = proc -> s.writer <- None
       | Some _ | None ->
         invalid_arg
           (Printf.sprintf "Lock_manager: write unlock of %s by non-holder %d"
              lock proc)
     else begin
       if not (List.mem proc s.readers) then
         invalid_arg
           (Printf.sprintf "Lock_manager: read unlock of %s by non-reader %d" lock
              proc);
       let rec remove_one = function
         | [] -> []
         | p :: rest -> if p = proc then rest else p :: remove_one rest
       in
       s.readers <- remove_one s.readers
     end);
    merge_dep s.dep vc;
    if t.demand && write then
      List.iter
        (fun loc ->
          match Hashtbl.find_opt s.invalid loc with
          | Some prev -> merge_dep prev vc
          | None -> Hashtbl.add s.invalid loc (Array.copy vc))
        write_set;
    List.iter (fun (loc, numeric, tag) -> Hashtbl.replace s.guarded loc (numeric, tag)) values;
    t.send ~dst:proc (Protocol.Unlock_ack { lock; seq = next_seq s });
    try_grant t lock s
  | _ -> invalid_arg "Lock_manager.handle: unexpected message"

let grants_issued t = t.grants
