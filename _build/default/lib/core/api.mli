(** First-class memory interface.

    Applications are written against this record of operations so the
    same program can run on the mixed-consistency runtime or on any of
    the baseline memories (sequentially consistent central server,
    write-invalidate protocol, ...) for comparison experiments. *)

type t = {
  proc_id : int;
  n_procs : int;
  read : ?label:Mc_history.Op.label -> Mc_history.Op.location -> int;
  write : Mc_history.Op.location -> int -> unit;
  init_counter : Mc_history.Op.location -> int -> unit;
  decrement : Mc_history.Op.location -> amount:int -> unit;
  read_lock : Mc_history.Op.lock_name -> unit;
  read_unlock : Mc_history.Op.lock_name -> unit;
  write_lock : Mc_history.Op.lock_name -> unit;
  write_unlock : Mc_history.Op.lock_name -> unit;
  barrier : unit -> unit;
  await : Mc_history.Op.location -> int -> unit;
  compute : float -> unit;
}

(** [of_proc p] wraps a mixed-consistency runtime process handle. *)
val of_proc : Runtime.proc -> t

(** [spawn rt i f] spawns process [i] of the runtime and hands [f] the
    wrapped interface. *)
val spawn : Runtime.t -> int -> (t -> unit) -> unit
