type update = {
  writer : int;
  useq : int;
  dep : int array;
  loc : Mc_history.Op.location;
  numeric : Mc_history.Op.value;
  tag : int;
  is_dec : bool;
}

type msg =
  | Update of update
  | Lock_request of { proc : int; lock : Mc_history.Op.lock_name; write : bool }
  | Lock_grant of {
      lock : Mc_history.Op.lock_name;
      write : bool;
      seq : int;
      dep : int array;
      invalid : (Mc_history.Op.location * int array) list;
      values : (Mc_history.Op.location * int * int) list;
    }
  | Unlock_msg of {
      proc : int;
      lock : Mc_history.Op.lock_name;
      write : bool;
      vc : int array;
      write_set : Mc_history.Op.location list;
      values : (Mc_history.Op.location * int * int) list;
    }
  | Unlock_ack of { lock : Mc_history.Op.lock_name; seq : int }
  | Flush_request of { proc : int }
  | Flush_ack of { proc : int }
  | Barrier_arrive of {
      proc : int;
      episode : int;
      vc : int array;
      members : int list;  (** empty means all processes *)
      sent : int array;
          (** multicast mode: cumulative update counts this process has
              sent to each peer (Section 6's count vectors); empty when
              vector timestamps are in use *)
    }
  | Barrier_release of {
      episode : int;
      dep : int array;
      members : int list;
      expect : int array;
          (** multicast mode: cumulative update counts the receiver must
              have received from each peer before leaving the barrier;
              empty when vector timestamps are in use *)
    }

let kind = function
  | Update { is_dec = false; _ } -> "update"
  | Update { is_dec = true; _ } -> "dec_update"
  | Lock_request _ -> "lock_request"
  | Lock_grant _ -> "lock_grant"
  | Unlock_msg _ -> "unlock"
  | Unlock_ack _ -> "unlock_ack"
  | Flush_request _ -> "flush_request"
  | Flush_ack _ -> "flush_ack"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_release _ -> "barrier_release"
