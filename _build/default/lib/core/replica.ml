module Engine = Mc_sim.Engine

type cell = { mutable numeric : int; mutable tag : int }

type watcher = { pred : unit -> bool; resume : unit -> unit }

(* A Section-3.2 group view: causality maintained across [members].
   [g_applied] counts updates applied to this view per writer. An update
   applies once its dependencies on members are applied here and its
   dependencies on non-members have at least been received; the group
   relation only tracks edges touching members, so received counts are
   enough for the rest. *)
type group_view = {
  members : bool array;
  g_view : (Mc_history.Op.location, cell) Hashtbl.t;
  g_applied : int array;
  mutable g_pending : Protocol.update list;
}

type t = {
  engine : Engine.t;
  node_id : int;
  n : int;
  mutable own_seq : int;
  applied_counts : int array;
  received_counts : int array;
  causal_view : (Mc_history.Op.location, cell) Hashtbl.t;
  pram_view : (Mc_history.Op.location, cell) Hashtbl.t;
  mutable pending : Protocol.update list; (* causal delivery buffer *)
  invalid : (Mc_history.Op.location, int array) Hashtbl.t;
  mutable watchers : watcher list;
  group_views : (int list * group_view) list;
  causal_delivery : bool;
      (* false under multicast routing: updates may arrive with gaps in
         the writer sequence, so only the PRAM view is maintained *)
}

let create engine ~id ~n ?(groups = []) ?(causal_delivery = true) () =
  let make_group members_list =
    let members = Array.make n false in
    List.iter
      (fun m ->
        if m < 0 || m >= n then invalid_arg "Replica.create: group member out of range";
        members.(m) <- true)
      members_list;
    ( List.sort_uniq compare members_list,
      {
        members;
        g_view = Hashtbl.create 32;
        g_applied = Array.make n 0;
        g_pending = [];
      } )
  in
  {
    engine;
    node_id = id;
    n;
    own_seq = 0;
    applied_counts = Array.make n 0;
    received_counts = Array.make n 0;
    causal_view = Hashtbl.create 64;
    pram_view = Hashtbl.create 64;
    pending = [];
    invalid = Hashtbl.create 8;
    watchers = [];
    group_views = List.map make_group groups;
    causal_delivery;
  }

let id t = t.node_id
let applied t = Array.copy t.applied_counts
let received t = Array.copy t.received_counts
let pending_count t = List.length t.pending

let view_cell view loc =
  match Hashtbl.find_opt view loc with
  | Some c -> c
  | None ->
    let c = { numeric = 0; tag = 0 } in
    Hashtbl.add view loc c;
    c

let read_view view loc =
  match Hashtbl.find_opt view loc with
  | Some c -> (c.numeric, c.tag)
  | None -> (0, 0)

let apply_to_view view (u : Protocol.update) =
  let c = view_cell view u.loc in
  if u.is_dec then c.numeric <- c.numeric - u.numeric
  else begin
    c.numeric <- u.numeric;
    c.tag <- u.tag
  end

let causal_read t loc = read_view t.causal_view loc
let pram_read t loc = read_view t.pram_view loc

let find_group t group =
  let key = List.sort_uniq compare group in
  match List.assoc_opt key t.group_views with
  | Some g -> g
  | None ->
    invalid_arg
      ("Replica.group_read: group not registered: {"
      ^ String.concat "," (List.map string_of_int key)
      ^ "}")

let group_read t ~group loc = read_view (find_group t group).g_view loc

(* a member update is deliverable to a group view when its member
   dependencies are applied to the view (per-writer in order) and its
   non-member dependencies have at least been received *)
let group_deliverable t g (u : Protocol.update) =
  g.g_applied.(u.writer) = u.useq - 1
  && (let ok = ref true in
      Array.iteri
        (fun k d ->
          if k <> u.writer then
            if g.members.(k) then begin
              if g.g_applied.(k) < d then ok := false
            end
            else if t.received_counts.(k) < d then ok := false)
        u.dep;
      !ok)

let group_apply g (u : Protocol.update) =
  apply_to_view g.g_view u;
  g.g_applied.(u.writer) <- g.g_applied.(u.writer) + 1

let drain_group t g =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> List.rev acc
      | u :: rest ->
        if group_deliverable t g u then begin
          group_apply g u;
          progress := true;
          scan acc rest
        end
        else scan (u :: acc) rest
    in
    g.g_pending <- scan [] g.g_pending
  done

let group_receive t g (u : Protocol.update) =
  (* every update waits for its dependencies on group members to be
     applied to this view: a non-member's update can causally depend on a
     member's write (the writer observed it before writing), and the
     group relation includes reads-from edges that touch members *)
  g.g_pending <- g.g_pending @ [ u ];
  drain_group t g

let dep_satisfied t dep =
  let ok = ref true in
  Array.iteri (fun j d -> if t.applied_counts.(j) < d then ok := false) dep;
  !ok

let notify t =
  (* Fire watchers whose predicate now holds. A fired resume may run a
     continuation that installs new watchers, so snapshot first. *)
  let rec fire () =
    let ready, blocked = List.partition (fun w -> w.pred ()) t.watchers in
    t.watchers <- blocked;
    match ready with
    | [] -> ()
    | ws ->
      List.iter (fun w -> w.resume ()) ws;
      fire ()
  in
  fire ()

let deliverable t (u : Protocol.update) =
  t.applied_counts.(u.writer) = u.useq - 1
  && (let ok = ref true in
      Array.iteri
        (fun k d -> if k <> u.writer && t.applied_counts.(k) < d then ok := false)
        u.dep;
      !ok)

let causal_apply t (u : Protocol.update) =
  apply_to_view t.causal_view u;
  t.applied_counts.(u.writer) <- t.applied_counts.(u.writer) + 1;
  (* clear satisfied demand-mode obligations *)
  let cleared =
    Hashtbl.fold
      (fun loc dep acc -> if dep_satisfied t dep then loc :: acc else acc)
      t.invalid []
  in
  List.iter (Hashtbl.remove t.invalid) cleared

let drain_pending t =
  let progress = ref true in
  while !progress do
    progress := false;
    let rec scan acc = function
      | [] -> List.rev acc
      | u :: rest ->
        if deliverable t u then begin
          causal_apply t u;
          progress := true;
          scan acc rest
        end
        else scan (u :: acc) rest
    in
    t.pending <- scan [] t.pending
  done

let receive t (u : Protocol.update) =
  if u.writer = t.node_id then
    invalid_arg "Replica.receive: update from self (already applied locally)";
  t.received_counts.(u.writer) <- t.received_counts.(u.writer) + 1;
  apply_to_view t.pram_view u;
  if t.causal_delivery then begin
    t.pending <- t.pending @ [ u ];
    drain_pending t;
    List.iter (fun (_, g) -> group_receive t g u) t.group_views
  end;
  notify t

let make_update t ~loc ~numeric ~tag ~is_dec =
  (* dependency clock: applied counts before this update; the writer's own
     entry equals own_seq, i.e. useq - 1 *)
  let dep = Array.copy t.applied_counts in
  t.own_seq <- t.own_seq + 1;
  let u : Protocol.update =
    { writer = t.node_id; useq = t.own_seq; dep; loc; numeric; tag; is_dec }
  in
  apply_to_view t.causal_view u;
  apply_to_view t.pram_view u;
  t.applied_counts.(t.node_id) <- t.applied_counts.(t.node_id) + 1;
  t.received_counts.(t.node_id) <- t.received_counts.(t.node_id) + 1;
  (* own updates apply to every group view immediately *)
  List.iter
    (fun (_, g) ->
      group_apply g u;
      drain_group t g)
    t.group_views;
  notify t;
  u

let local_write t ~loc ~numeric ~tag = make_update t ~loc ~numeric ~tag ~is_dec:false

let local_dec t ~loc ~amount =
  let observed, _ = causal_read t loc in
  let u = make_update t ~loc ~numeric:amount ~tag:0 ~is_dec:true in
  (u, observed)

(* entry mode: install a value carried by a lock grant directly into
   both views; these values never traveled as counted updates, so the
   vector bookkeeping is untouched (the lock discipline provides the
   ordering) *)
let install_direct t ~loc ~numeric ~tag =
  let set view =
    let c = view_cell view loc in
    c.numeric <- numeric;
    c.tag <- tag
  in
  set t.causal_view;
  set t.pram_view;
  List.iter (fun (_, g) -> set g.g_view) t.group_views;
  notify t

let mark_invalid t loc dep =
  if not (dep_satisfied t dep) then begin
    let merged =
      match Hashtbl.find_opt t.invalid loc with
      | Some prev -> Array.init (Array.length dep) (fun j -> max prev.(j) dep.(j))
      | None -> dep
    in
    Hashtbl.replace t.invalid loc merged
  end

let location_blocked t loc =
  match Hashtbl.find_opt t.invalid loc with
  | Some dep -> not (dep_satisfied t dep)
  | None -> false

let wait_until t pred =
  if not (pred ()) then
    Engine.suspend t.engine (fun resume ->
        t.watchers <- { pred; resume } :: t.watchers)
