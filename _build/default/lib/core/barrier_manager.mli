(** Barrier manager (Section 6): processes send their applied-update
    count vectors when they arrive at a barrier; once all have arrived,
    the manager broadcasts a release carrying the pointwise maximum — the
    updates every process must apply before leaving the barrier. This is
    the count-vector scheme the paper describes, with vector timestamps
    playing the role of per-peer message counts. *)

type t

(** [create ~n ~send] builds a manager for a barrier over all [n]
    processes. *)
val create : n:int -> send:(dst:int -> Protocol.msg -> unit) -> t

(** [handle t ~src msg] processes a [Barrier_arrive]. *)
val handle : t -> src:int -> Protocol.msg -> unit

(** [episodes_released t] counts completed episodes (for tests). *)
val episodes_released : t -> int
