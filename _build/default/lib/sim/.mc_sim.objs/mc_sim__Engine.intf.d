lib/sim/engine.mli: Printexc
