lib/sim/engine.ml: Effect Hashtbl List Mc_util Printexc Printf String
