(** Aligned ASCII table rendering for the benchmark harness.

    All experiment tables printed by [bench/main.exe] go through this
    module so paper-style rows render uniformly. *)

type align = Left | Right

(** [render ~headers ?aligns rows] lays out a table with a header rule.
    [aligns] defaults to left-aligned for every column. Rows shorter than
    the header are padded with empty cells. *)
val render : headers:string list -> ?aligns:align list -> string list list -> string

(** [print ~title ~headers ?aligns rows] renders and prints the table to
    stdout under a title banner. *)
val print : title:string -> headers:string list -> ?aligns:align list -> string list list -> unit

(** [fmt_float x] formats a float compactly for table cells. *)
val fmt_float : float -> string

(** [fmt_ratio x] formats a speedup/ratio like "3.42x". *)
val fmt_ratio : float -> string
