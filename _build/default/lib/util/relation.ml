(* Bit-matrix representation: row i is a bitset of successors of i, packed
   into an int array with [word_bits] bits per word. *)

let word_bits = 62

type t = { n : int; words : int; rows : int array array }

let create n =
  let words = if n = 0 then 0 else ((n - 1) / word_bits) + 1 in
  { n; words; rows = Array.init n (fun _ -> Array.make words 0) }

let size t = t.n

let check t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg (Printf.sprintf "Relation: pair (%d, %d) out of range 0..%d" i j (t.n - 1))

let add t i j =
  check t i j;
  let w = j / word_bits and b = j mod word_bits in
  t.rows.(i).(w) <- t.rows.(i).(w) lor (1 lsl b)

let mem t i j =
  check t i j;
  let w = j / word_bits and b = j mod word_bits in
  t.rows.(i).(w) land (1 lsl b) <> 0

let copy t =
  { t with rows = Array.map Array.copy t.rows }

let union a b =
  if a.n <> b.n then invalid_arg "Relation.union: size mismatch";
  let r = copy a in
  for i = 0 to a.n - 1 do
    for w = 0 to a.words - 1 do
      r.rows.(i).(w) <- r.rows.(i).(w) lor b.rows.(i).(w)
    done
  done;
  r

let or_row dst src words =
  for w = 0 to words - 1 do
    dst.(w) <- dst.(w) lor src.(w)
  done

(* Warshall's algorithm with bitset rows: if i reaches k, fold k's row in. *)
let transitive_closure t =
  let r = copy t in
  for k = 0 to t.n - 1 do
    let kw = k / word_bits and kb = k mod word_bits in
    let krow = r.rows.(k) in
    for i = 0 to t.n - 1 do
      if i <> k && r.rows.(i).(kw) land (1 lsl kb) <> 0 then
        or_row r.rows.(i) krow t.words
    done
  done;
  r

let successors t i =
  let acc = ref [] in
  for j = t.n - 1 downto 0 do
    if mem t i j then acc := j :: !acc
  done;
  !acc

let predecessors t j =
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if mem t i j then acc := i :: !acc
  done;
  !acc

let fold t f init =
  let acc = ref init in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if mem t i j then acc := f !acc i j
    done
  done;
  !acc

let cardinal t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    for w = 0 to t.words - 1 do
      (* popcount by Kernighan's loop; rows are sparse in practice *)
      let x = ref t.rows.(i).(w) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr count
      done
    done
  done;
  !count

let equal a b =
  a.n = b.n
  && (let ok = ref true in
      for i = 0 to a.n - 1 do
        for w = 0 to a.words - 1 do
          if a.rows.(i).(w) <> b.rows.(i).(w) then ok := false
        done
      done;
      !ok)

let subset a b =
  a.n = b.n
  && (let ok = ref true in
      for i = 0 to a.n - 1 do
        for w = 0 to a.words - 1 do
          if a.rows.(i).(w) land lnot b.rows.(i).(w) <> 0 then ok := false
        done
      done;
      !ok)

let restrict t keep =
  let r = create t.n in
  for i = 0 to t.n - 1 do
    if keep i then
      for j = 0 to t.n - 1 do
        if keep j && mem t i j then add r i j
      done
  done;
  r

let is_acyclic t =
  (* Kahn's algorithm: repeatedly remove zero-in-degree nodes. *)
  let indeg = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    List.iter (fun j -> indeg.(j) <- indeg.(j) + 1) (successors t i)
  done;
  let stack = ref [] in
  for i = t.n - 1 downto 0 do
    if indeg.(i) = 0 then stack := i :: !stack
  done;
  let removed = ref 0 in
  let rec loop () =
    match !stack with
    | [] -> ()
    | i :: rest ->
      stack := rest;
      incr removed;
      let f j =
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then stack := j :: !stack
      in
      List.iter f (successors t i);
      loop ()
  in
  loop ();
  !removed = t.n

let topological_order t =
  let indeg = Array.make t.n 0 in
  for i = 0 to t.n - 1 do
    List.iter (fun j -> if j <> i then indeg.(j) <- indeg.(j) + 1) (successors t i)
  done;
  (* Min-heap on indices for deterministic output. *)
  let ready = Pqueue.create () in
  for i = 0 to t.n - 1 do
    if indeg.(i) = 0 then Pqueue.add ready ~priority:(float_of_int i) i
  done;
  let order = ref [] in
  let count = ref 0 in
  while not (Pqueue.is_empty ready) do
    let _, i = Pqueue.pop_min ready in
    order := i :: !order;
    incr count;
    let f j =
      if j <> i then begin
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Pqueue.add ready ~priority:(float_of_int j) j
      end
    in
    List.iter f (successors t i)
  done;
  if !count <> t.n then invalid_arg "Relation.topological_order: cyclic relation";
  List.rev !order

(* For an acyclic relation, edge (i, j) is redundant iff some other
   successor k of i reaches j in the closure. *)
let transitive_reduction t =
  if not (is_acyclic t) then invalid_arg "Relation.transitive_reduction: cyclic relation";
  let closure = transitive_closure t in
  let r = create t.n in
  for i = 0 to t.n - 1 do
    let succs = successors t i in
    let redundant j =
      List.exists (fun k -> k <> j && mem closure k j) succs
    in
    List.iter (fun j -> if not (redundant j) then add r i j) succs
  done;
  r
