(** Dense binary relations over [0 .. n-1], stored as bit matrices.

    Used by the history/consistency machinery for causality relations:
    transitive closure and reduction, acyclicity checks, and topological
    orders over operation indices. *)

type t

(** [create n] is the empty relation over [n] elements. *)
val create : int -> t

val size : t -> int

(** [add t i j] adds the pair (i, j). Idempotent. *)
val add : t -> int -> int -> unit

(** [mem t i j] tests membership of (i, j). *)
val mem : t -> int -> int -> bool

(** [copy t] is an independent copy. *)
val copy : t -> t

(** [union a b] is a new relation containing the pairs of both. The two
    relations must have the same size. *)
val union : t -> t -> t

(** [transitive_closure t] is a new relation: the transitive closure.
    O(n^3 / word_size) via bitset row unions. *)
val transitive_closure : t -> t

(** [transitive_reduction t] is a new relation: the unique minimal relation
    with the same transitive closure. Defined for acyclic relations; raises
    [Invalid_argument] if [t] has a cycle. *)
val transitive_reduction : t -> t

(** [is_acyclic t] checks that the relation (viewed as a digraph) has no
    directed cycle. A self-loop is a cycle. *)
val is_acyclic : t -> bool

(** [topological_order t] lists all elements in an order consistent with
    the relation (edges point forward). Raises [Invalid_argument] on a
    cyclic relation. Deterministic: prefers lower indices. *)
val topological_order : t -> int list

(** [successors t i] lists [j] with (i, j) in the relation, ascending. *)
val successors : t -> int -> int list

(** [predecessors t j] lists [i] with (i, j) in the relation, ascending. *)
val predecessors : t -> int -> int list

(** [fold t f init] folds over all pairs (i, j) of the relation. *)
val fold : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

(** [cardinal t] is the number of pairs. *)
val cardinal : t -> int

(** [equal a b] tests extensional equality. *)
val equal : t -> t -> bool

(** [subset a b] tests whether every pair of [a] is in [b]. *)
val subset : t -> t -> bool

(** [restrict t keep] is the relation restricted to pairs whose endpoints
    both satisfy [keep]. Size is preserved; indices are not renumbered. *)
val restrict : t -> (int -> bool) -> t
