(** Imperative binary-heap priority queue.

    Elements are ordered by a priority supplied at insertion time; ties are
    broken by insertion order (FIFO), which the discrete-event engine relies
    on for determinism. *)

type 'a t

val create : unit -> 'a t

(** [add q ~priority x] inserts [x] with the given priority. *)
val add : 'a t -> priority:float -> 'a -> unit

(** [pop_min q] removes and returns the element with the smallest priority,
    FIFO among equal priorities. Raises [Not_found] on an empty queue. *)
val pop_min : 'a t -> float * 'a

(** [peek_min q] returns the smallest element without removing it. *)
val peek_min : 'a t -> (float * 'a) option

val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit

(** [drain q f] pops every element in priority order and applies [f]. *)
val drain : 'a t -> (float -> 'a -> unit) -> unit
