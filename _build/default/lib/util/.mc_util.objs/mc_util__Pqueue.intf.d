lib/util/pqueue.mli:
