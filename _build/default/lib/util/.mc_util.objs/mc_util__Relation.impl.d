lib/util/relation.ml: Array List Pqueue Printf
