lib/util/relation.mli:
