lib/util/tablefmt.mli:
