lib/util/rng.mli:
