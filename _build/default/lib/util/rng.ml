(* SplitMix64 (Steele, Lea, Flood 2014). State is a single 64-bit counter
   advanced by the golden-gamma; output is a finalizing mix of the state. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Mask to a non-negative native int and reduce; modulo bias is
     negligible for simulation purposes and keeps the generator
     branch-free. *)
  let raw = Int64.to_int (bits64 t) land max_int in
  raw mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (raw /. 9007199254740992.0 (* 2^53 *))

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))
