type 'a entry = { priority : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0
let length q = q.size

let clear q =
  q.heap <- [||];
  q.size <- 0

(* [lt a b] is the strict heap order: smaller priority first, then lower
   insertion sequence so that equal priorities pop FIFO. *)
let lt a b =
  a.priority < b.priority || (a.priority = b.priority && a.seq < b.seq)

let grow q entry =
  let cap = Array.length q.heap in
  if q.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nheap = Array.make ncap entry in
    Array.blit q.heap 0 nheap 0 q.size;
    q.heap <- nheap
  end

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt q.heap.(i) q.heap.(parent) then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(parent);
      q.heap.(parent) <- tmp;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && lt q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && lt q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = q.heap.(i) in
    q.heap.(i) <- q.heap.(!smallest);
    q.heap.(!smallest) <- tmp;
    sift_down q !smallest
  end

let add q ~priority value =
  let entry = { priority; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop_min q =
  if q.size = 0 then raise Not_found;
  let top = q.heap.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then begin
    q.heap.(0) <- q.heap.(q.size);
    sift_down q 0
  end;
  (top.priority, top.value)

let peek_min q = if q.size = 0 then None else begin
    let top = q.heap.(0) in
    Some (top.priority, top.value)
  end

let drain q f =
  while not (is_empty q) do
    let priority, value = pop_min q in
    f priority value
  done
