(** Deterministic splittable pseudo-random number generator.

    A small SplitMix64 implementation: every simulation component derives
    its own independent stream from a root seed, so adding randomness to
    one component never perturbs another. *)

type t

(** [make seed] creates a generator from a 64-bit seed. *)
val make : int -> t

(** [split t] derives a fresh, statistically independent generator and
    advances [t]. *)
val split : t -> t

(** [copy t] duplicates the current state. *)
val copy : t -> t

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** [float_in t lo hi] is uniform in [lo, hi). *)
val float_in : t -> float -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t arr] picks a uniform element. Requires a non-empty array. *)
val pick : t -> 'a array -> 'a
