type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ~headers ?aligns rows =
  let ncols = List.length headers in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.make ncols Left
  in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell ->
        if i < ncols && String.length cell > widths.(i) then
          widths.(i) <- String.length cell)
      row
  in
  measure headers;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < ncols then Buffer.add_string buf (pad aligns.(i) widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row headers;
  let rule_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Buffer.add_string buf (String.make rule_width '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print ~title ~headers ?aligns rows =
  Printf.printf "\n== %s ==\n%s%!" title (render ~headers ?aligns rows)

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 100. then Printf.sprintf "%.1f" x
  else if Float.abs x >= 1. then Printf.sprintf "%.2f" x
  else Printf.sprintf "%.4f" x

let fmt_ratio x = Printf.sprintf "%.2fx" x
