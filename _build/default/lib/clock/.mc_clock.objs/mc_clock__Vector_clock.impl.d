lib/clock/vector_clock.ml: Array Format List Printf String
