lib/clock/lamport_clock.ml:
