(** Vector clocks over a fixed set of processes [0 .. n-1].

    Used by the DSM layer to timestamp updates for causal delivery
    (Section 6 of the paper: "Each process maintains a vector timestamp in
    order to define the causality between operations"). *)

type t

(** [create n] is the zero vector over [n] processes. *)
val create : int -> t

(** [size t] is the number of processes. *)
val size : t -> int

(** [get t i] is component [i]. *)
val get : t -> int -> int

(** [set t i v] replaces component [i] (returns a new clock). *)
val set : t -> int -> int -> t

(** [tick t i] increments component [i] (returns a new clock). *)
val tick : t -> int -> t

(** [merge a b] is the component-wise maximum. *)
val merge : t -> t -> t

(** Pointwise comparison results. *)
type order = Equal | Before | After | Concurrent

(** [compare_clocks a b] is [Before] when [a <= b] pointwise with [a <> b],
    [After] symmetrically, [Equal] on equality, [Concurrent] otherwise. *)
val compare_clocks : t -> t -> order

(** [leq a b] is pointwise less-or-equal. *)
val leq : t -> t -> bool

(** [dominates a b] is [leq b a]. *)
val dominates : t -> t -> bool

(** [deliverable ~sender msg local] implements the causal-broadcast
    delivery condition: message timestamped [msg] from process [sender]
    is deliverable at a process with clock [local] iff
    [msg.(sender) = local.(sender) + 1] and [msg.(k) <= local.(k)] for
    all [k <> sender]. *)
val deliverable : sender:int -> t -> t -> bool

val equal : t -> t -> bool
val copy : t -> t
val to_list : t -> int list
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
