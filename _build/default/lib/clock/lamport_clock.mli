(** Lamport logical clocks.

    Used by the central-serializer SC baseline to order operations and by
    tests as a lightweight happened-before witness. *)

type t

val create : unit -> t

(** [tick t] advances the local clock for an internal or send event and
    returns the new timestamp. *)
val tick : t -> int

(** [observe t remote] merges a received timestamp ([max] + 1 rule) and
    returns the new local time. *)
val observe : t -> int -> int

(** [read t] is the current value without advancing. *)
val read : t -> int
