type t = { mutable time : int }

let create () = { time = 0 }

let tick t =
  t.time <- t.time + 1;
  t.time

let observe t remote =
  t.time <- max t.time remote + 1;
  t.time

let read t = t.time
