(* Immutable int-array representation. Clocks are small (one slot per
   process), so copying on update is cheap and removes aliasing bugs. *)

type t = int array

let create n =
  if n < 0 then invalid_arg "Vector_clock.create: negative size";
  Array.make n 0

let size = Array.length

let check t i =
  if i < 0 || i >= Array.length t then
    invalid_arg (Printf.sprintf "Vector_clock: index %d out of range" i)

let get t i =
  check t i;
  t.(i)

let set t i v =
  check t i;
  let r = Array.copy t in
  r.(i) <- v;
  r

let tick t i = set t i (get t i + 1)

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.merge: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

type order = Equal | Before | After | Concurrent

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let dominates a b = leq b a

let equal a b = a = b

let compare_clocks a b =
  let ab = leq a b and ba = leq b a in
  match ab, ba with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let deliverable ~sender msg local =
  if Array.length msg <> Array.length local then
    invalid_arg "Vector_clock.deliverable: size mismatch";
  let ok = ref (msg.(sender) = local.(sender) + 1) in
  Array.iteri (fun k x -> if k <> sender && x > local.(k) then ok := false) msg;
  !ok

let copy = Array.copy
let to_list = Array.to_list
let of_list = Array.of_list

let pp fmt t =
  Format.fprintf fmt "[%s]"
    (String.concat ";" (List.map string_of_int (to_list t)))
