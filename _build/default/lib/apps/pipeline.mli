(** Producer/consumer pipeline (paper Section 1: "The lock and unlock
    operations are useful for handling competing accesses to shared
    data, ... and await operations are useful for producer/consumer type
    of interactions").

    A chain of stages connected by bounded streams: stage 0 produces
    items, each middle stage transforms them, the last stage folds them
    into a checksum. Two implementations of the streams:

    - {!Await_based} — the model's intended style: per-slot ready/credit
      flags driven by awaits; data reads are causal, so the await edge
      carries the producer's writes to the consumer.
    - {!Lock_based} — a bounded buffer guarded by a write lock with
      polling, which is what one writes when awaits are missing: every
      empty/full check costs a lock round trip.

    Both compute the identical checksum; the await version needs neither
    polling nor mutual exclusion. *)

type impl = Await_based | Lock_based

val impl_to_string : impl -> string

type params = {
  items : int;  (** items pushed through the pipeline *)
  slots : int;  (** stream window size (flow-control credits) *)
  work : float;  (** simulated compute per item per stage *)
}

type result = { checksum : int; delivered : int }

(** [launch ~spawn ~procs ~impl params] runs a pipeline of [procs]
    stages. The cell is filled by the final stage. *)
val launch :
  spawn:(int -> (Mc_dsm.Api.t -> unit) -> unit) ->
  procs:int ->
  impl:impl ->
  params ->
  result option ref

(** [reference ~procs params] computes the expected checksum. *)
val reference : procs:int -> params -> result
