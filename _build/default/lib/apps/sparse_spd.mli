(** Sparse symmetric positive-definite problems for Cholesky
    factorization (paper Section 5.3).

    Provides random diagonally-dominant SPD matrix generation, symbolic
    factorization (fill pattern via elimination cliques), the elimination
    tree, and per-column dependency counts — the [count] array of
    Figure 5. *)

type t = {
  n : int;
  values : int array array;  (** dense storage of the lower triangle, fixed point *)
  pattern : bool array array;  (** fill pattern of L (lower triangle, includes diagonal) *)
  deps : int array;  (** deps.(j) = number of columns k < j with L[j][k] in the pattern *)
  parent : int array;  (** elimination tree parent, -1 for roots *)
}

(** [generate ~seed ~n ~density] builds a random SPD matrix with roughly
    [density] fraction of off-diagonal entries, then computes its fill
    pattern symbolically. [density] in [0, 1]. *)
val generate : seed:int -> n:int -> density:float -> t

(** [arrow ~n ~bandwidth] builds a structured problem: a banded matrix
    plus a dense last row/column (an "arrowhead", a classic high-fill
    shape). *)
val arrow : seed:int -> n:int -> bandwidth:int -> t

(** [nnz t] counts pattern entries of L. *)
val nnz : t -> int

(** [column t j] lists the pattern rows of column [j] (ascending, starts
    with [j]). *)
val column : t -> int -> int list

(** [factor_reference t] computes the Cholesky factor sequentially in
    fixed point (right-looking), returning the dense lower triangle. *)
val factor_reference : t -> int array array

(** [verify t l] checks [l * l^T] approximates the original matrix within
    fixed-point tolerance; returns the max absolute error. *)
val verify : t -> int array array -> int
