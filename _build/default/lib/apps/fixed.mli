(** Fixed-point arithmetic for the numeric applications.

    Shared memory values are integers (the [Op.value] type), so the
    scientific applications compute in Q-format fixed point: a real [v]
    is represented as [round (v * scale)] with [scale = 2^16]. All
    operations are deterministic, which lets tests compare distributed
    results against sequential references exactly. *)

val scale : int

(** [of_float v] converts to fixed point. *)
val of_float : float -> int

(** [to_float x] converts back. *)
val to_float : int -> float

(** [mul a b] is the fixed-point product [(a * b) / scale]. *)
val mul : int -> int -> int

(** [div a b] is the fixed-point quotient [(a * scale) / b]. Requires
    [b <> 0]. *)
val div : int -> int -> int

(** [sqrt x] is the fixed-point square root: [isqrt (x * scale)] for
    non-negative [x]. *)
val sqrt : int -> int

(** [isqrt n] is the integer square root of a non-negative int. *)
val isqrt : int -> int
