module Api = Mc_dsm.Api
module Op = Mc_history.Op
module Problem = Linear_solver.Problem

type result = {
  x : int array;
  sweeps : int array;
  residual : int;
  converged : bool;
}

let default_tol = Fixed.scale / 100

let loc_x i = "ax:" ^ string_of_int i
let loc_done = "adone"
let loc_sweeps w = "asweeps:" ^ string_of_int w

let update_row (p : Problem.t) get r =
  let sum = ref 0 in
  for j = 0 to p.Problem.n - 1 do
    sum := !sum + Fixed.mul p.Problem.a.(r).(j) (get j)
  done;
  get r + Fixed.div (p.Problem.b.(r) - !sum) p.Problem.a.(r).(r)

let residual (p : Problem.t) x =
  let m = ref 0 in
  for i = 0 to p.Problem.n - 1 do
    let sum = ref 0 in
    for j = 0 to p.Problem.n - 1 do
      sum := !sum + Fixed.mul p.Problem.a.(i).(j) x.(j)
    done;
    m := max !m (abs (p.Problem.b.(i) - !sum))
  done;
  !m

let rows_of_worker ~n ~workers w =
  let per = n / workers and extra = n mod workers in
  let lo = (w * per) + min w extra in
  let hi = lo + per + (if w < extra then 1 else 0) - 1 in
  (lo, hi)

let worker (p : Problem.t) ~workers ~label ~max_sweeps w (api : Api.t) =
  let lo, hi = rows_of_worker ~n:p.Problem.n ~workers (w - 1) in
  let read_x i = api.Api.read ~label (loc_x i) in
  let sweeps = ref 0 in
  while api.Api.read ~label loc_done = 0 && !sweeps < max_sweeps do
    for r = lo to hi do
      (* chaotic relaxation: read whatever estimates have arrived, write
         the fresh value immediately - no synchronization whatsoever *)
      api.Api.write (loc_x r) (update_row p read_x r);
      api.Api.compute 1.0
    done;
    incr sweeps;
    api.Api.write (loc_sweeps w) !sweeps;
    (* pace sweeps against propagation: a sweep that reuses the same
       stale foreign estimates makes no progress, so give updates one
       latency window to arrive *)
    api.Api.compute 30.0
  done

let monitor (p : Problem.t) ~workers ~label ~tol ~max_checks result (api : Api.t) =
  let n = p.Problem.n in
  let read_x i = api.Api.read ~label (loc_x i) in
  let prev = ref None in
  let checks = ref 0 in
  let finished = ref false in
  let hit_tol = ref false in
  while not !finished do
    api.Api.compute 200.0;
    (* poll period *)
    incr checks;
    let cur = Array.init n read_x in
    (match !prev with
    | Some prev_x
      when (let d = ref 0 in
            Array.iteri (fun i v -> d := max !d (abs (v - prev_x.(i)))) cur;
            !d)
           <= tol / 4
           && residual p cur <= tol ->
      hit_tol := true
    | Some _ | None -> ());
    if !hit_tol || !checks >= max_checks then begin
      api.Api.write loc_done 1;
      finished := true
    end;
    prev := Some cur
  done;
  (* drain: give stragglers a moment to observe [done], then gather *)
  api.Api.compute 2000.0;
  let x = Array.init n read_x in
  let sweeps = Array.init workers (fun w -> api.Api.read ~label (loc_sweeps (w + 1))) in
  result := Some { x; sweeps; residual = residual p x; converged = !hit_tol }

let launch ~spawn ~procs ?(label = Op.PRAM) ?(max_sweeps = 500) ?(tol = default_tol)
    (p : Problem.t) =
  if procs < 2 then invalid_arg "Async_solver.launch: need a monitor and a worker";
  let workers = procs - 1 in
  let result = ref None in
  spawn 0 (fun api -> monitor p ~workers ~label ~tol ~max_checks:200 result api);
  for w = 1 to workers do
    spawn w (fun api -> worker p ~workers ~label ~max_sweeps w api)
  done;
  result

let solution ?(tol = default_tol) (p : Problem.t) =
  let n = p.Problem.n in
  let x = Array.make n 0 in
  let moved = ref true in
  let rounds = ref 0 in
  while !moved && !rounds < 10_000 do
    incr rounds;
    moved := false;
    let next = Array.init n (fun r -> update_row p (fun j -> x.(j)) r) in
    Array.iteri
      (fun i v ->
        if abs (v - x.(i)) > tol / 16 then moved := true;
        x.(i) <- v)
      next
  done;
  x
