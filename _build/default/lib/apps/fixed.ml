let scale_bits = 16
let scale = 1 lsl scale_bits

let of_float v = int_of_float (Float.round (v *. float_of_int scale))
let to_float x = float_of_int x /. float_of_int scale

let mul a b = a * b / scale

let div a b =
  if b = 0 then invalid_arg "Fixed.div: division by zero";
  a * scale / b

let isqrt n =
  if n < 0 then invalid_arg "Fixed.isqrt: negative argument";
  if n = 0 then 0
  else begin
    (* Newton's method on integers; converges in ~60 iterations worst
       case, monotonically decreasing once above the root. *)
    let x = ref n in
    let next = ref ((n / !x + !x) / 2) in
    while !next < !x do
      x := !next;
      next := (n / !x + !x) / 2
    done;
    !x
  end

let sqrt x =
  if x < 0 then invalid_arg "Fixed.sqrt: negative argument";
  isqrt (x * scale)
