module Api = Mc_dsm.Api

type impl = Await_based | Lock_based

let impl_to_string = function
  | Await_based -> "awaits (producer/consumer)"
  | Lock_based -> "locks + polling"

type params = { items : int; slots : int; work : float }
type result = { checksum : int; delivered : int }

(* the per-stage transformation; values stay below the runtime's tag
   range *)
let transform ~stage v = (v * 31) + stage + 1

let source_item n = (n * 7) + 3

(* stream [s] connects stage [s] (producer) to stage [s+1] (consumer) *)
let loc_value s n = Printf.sprintf "pv:%d:%d" s n
let loc_ready s slot = Printf.sprintf "prdy:%d:%d" s slot
let loc_credit s slot = Printf.sprintf "pcrd:%d:%d" s slot
let loc_result = "presult"
let loc_count = "pcount"

(* ------------------------------------------------------------------ *)
(* Await-based streams                                                 *)
(* ------------------------------------------------------------------ *)

(* Per-slot sequence-number handshake: for item [n] on slot [n mod slots]
   the producer waits for the consumer's credit of item [n - slots], then
   writes the value and raises the ready flag to [n + 1] (flag values on
   one location are strictly increasing, so awaits cannot miss them). *)

let await_produce (api : Api.t) ~params ~stream n v =
  let slot = n mod params.slots in
  if n >= params.slots then api.Api.await (loc_credit stream slot) (n - params.slots + 1);
  api.Api.write (loc_value stream n) v;
  api.Api.write (loc_ready stream slot) (n + 1)

let await_consume (api : Api.t) ~params ~stream n =
  let slot = n mod params.slots in
  api.Api.await (loc_ready stream slot) (n + 1);
  let v = api.Api.read (loc_value stream n) in
  api.Api.write (loc_credit stream slot) (n + 1);
  v

(* ------------------------------------------------------------------ *)
(* Lock-based bounded buffer with polling                              *)
(* ------------------------------------------------------------------ *)

let lock_of_stream s = "plock:" ^ string_of_int s
let loc_head s = "phead:" ^ string_of_int s
let loc_tail s = "ptail:" ^ string_of_int s

(* head/tail counters are encoded as [count * 64 + stream] so every
   recorded write value stays unique per location across streams *)
let enc s c = (c * 64) + s
let dec c = c / 64

let poll_pause = 40.0

let lock_produce (api : Api.t) ~params ~stream n v =
  let lock = lock_of_stream stream in
  let rec try_push () =
    api.Api.write_lock lock;
    let head = dec (api.Api.read (loc_head stream)) in
    let tail = dec (api.Api.read (loc_tail stream)) in
    if head - tail < params.slots then begin
      api.Api.write (loc_value stream n) v;
      api.Api.write (loc_head stream) (enc stream (head + 1));
      api.Api.write_unlock lock
    end
    else begin
      (* buffer full: release and poll again *)
      api.Api.write_unlock lock;
      api.Api.compute poll_pause;
      try_push ()
    end
  in
  try_push ()

let lock_consume (api : Api.t) ~params ~stream n =
  ignore params;
  let lock = lock_of_stream stream in
  let rec try_pop () =
    api.Api.write_lock lock;
    let head = dec (api.Api.read (loc_head stream)) in
    let tail = dec (api.Api.read (loc_tail stream)) in
    if head > tail then begin
      let v = api.Api.read (loc_value stream n) in
      api.Api.write (loc_tail stream) (enc stream (tail + 1));
      api.Api.write_unlock lock;
      v
    end
    else begin
      api.Api.write_unlock lock;
      api.Api.compute poll_pause;
      try_pop ()
    end
  in
  try_pop ()

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let stage ~params ~procs ~impl result s (api : Api.t) =
  let produce, consume =
    match impl with
    | Await_based -> (await_produce, await_consume)
    | Lock_based -> (lock_produce, lock_consume)
  in
  (if s = 0 then
     (* source *)
     for n = 0 to params.items - 1 do
       api.Api.compute params.work;
       produce api ~params ~stream:0 n (source_item n)
     done
   else if s < procs - 1 then
     for n = 0 to params.items - 1 do
       let v = consume api ~params ~stream:(s - 1) n in
       api.Api.compute params.work;
       produce api ~params ~stream:s n (transform ~stage:s v)
     done
   else begin
     (* sink *)
     let acc = ref 0 in
     for n = 0 to params.items - 1 do
       let v = consume api ~params ~stream:(s - 1) n in
       api.Api.compute params.work;
       acc := !acc + transform ~stage:s v
     done;
     api.Api.write loc_result !acc;
     api.Api.write loc_count params.items;
     result := Some { checksum = !acc; delivered = params.items }
   end)

let launch ~spawn ~procs ~impl params =
  if procs < 2 then invalid_arg "Pipeline.launch: need at least two stages";
  if params.slots < 1 then invalid_arg "Pipeline.launch: need at least one slot";
  let result = ref None in
  for s = 0 to procs - 1 do
    spawn s (fun api -> stage ~params ~procs ~impl result s api)
  done;
  result

let reference ~procs params =
  let acc = ref 0 in
  for n = 0 to params.items - 1 do
    let v = ref (source_item n) in
    for s = 1 to procs - 1 do
      v := transform ~stage:s !v
    done;
    acc := !acc + !v
  done;
  { checksum = !acc; delivered = params.items }
