module Api = Mc_dsm.Api
module Op = Mc_history.Op

type params = { rows : int; cols : int; steps : int; seed : int }
type result = { checksum : int; energy : int }

let c = Fixed.of_float 0.5

(* initial impulse: deterministic small E values around the middle rows *)
let initial_e ~params i j =
  let rng = Mc_util.Rng.make (params.seed + (i * params.cols) + j) in
  let mid = params.rows / 2 in
  if abs (i - mid) <= 1 then Fixed.of_float (Mc_util.Rng.float_in rng (-1.0) 1.0)
  else 0

let strip ~rows ~procs p =
  let per = rows / procs and extra = rows mod procs in
  let lo = (p * per) + min p extra in
  let hi = lo + per + (if p < extra then 1 else 0) - 1 in
  (lo, hi)

let loc_e p j = Printf.sprintf "e:%d:%d" p j
let loc_h p j = Printf.sprintf "h:%d:%d" p j
let loc_chk p = "chk:" ^ string_of_int p
let loc_nrg p = "nrg:" ^ string_of_int p

let digest_cell ~cols acc i j e h =
  acc + (e * ((i * cols) + j + 1)) + (h * ((i * cols) + j + 7))

let worker ~params ~procs ~label result p (api : Api.t) =
  let { rows; cols; steps; _ } = params in
  let lo, hi = strip ~rows ~procs p in
  let local_rows = hi - lo + 1 in
  let e = Array.init local_rows (fun r -> Array.init cols (initial_e ~params (lo + r))) in
  let h = Array.make_matrix local_rows cols 0 in
  for _step = 1 to steps do
    (* E phase: E[i][j] += c * (H[i][j] - H[i-1][j]) *)
    let ghost_h =
      if p > 0 then Array.init cols (fun j -> api.read ~label (loc_h (p - 1) j))
      else Array.make cols 0
    in
    for r = local_rows - 1 downto 0 do
      let h_above = if r = 0 then ghost_h else h.(r - 1) in
      let h_above = if lo + r = 0 then Array.make cols 0 else h_above in
      for j = 0 to cols - 1 do
        e.(r).(j) <- e.(r).(j) + Fixed.mul c (h.(r).(j) - h_above.(j))
      done
    done;
    api.compute (float_of_int (local_rows * cols) *. 0.01);
    (* publish our first E row for the predecessor's H update *)
    if p > 0 then
      for j = 0 to cols - 1 do
        api.write (loc_e p j) e.(0).(j)
      done;
    api.barrier ();
    (* H phase: H[i][j] += c * (E[i+1][j] - E[i][j]) *)
    let ghost_e =
      if p < procs - 1 then
        Array.init cols (fun j -> api.read ~label (loc_e (p + 1) j))
      else Array.make cols 0
    in
    for r = 0 to local_rows - 1 do
      let e_below = if r = local_rows - 1 then ghost_e else e.(r + 1) in
      let e_below = if lo + r = rows - 1 then Array.make cols 0 else e_below in
      for j = 0 to cols - 1 do
        h.(r).(j) <- h.(r).(j) + Fixed.mul c (e_below.(j) - e.(r).(j))
      done
    done;
    api.compute (float_of_int (local_rows * cols) *. 0.01);
    (* publish our last H row for the successor's E update *)
    if p < procs - 1 then
      for j = 0 to cols - 1 do
        api.write (loc_h p j) h.(local_rows - 1).(j)
      done;
    api.barrier ()
  done;
  (* gather: per-strip digests, then process 0 combines after a barrier *)
  let chk = ref 0 and nrg = ref 0 in
  for r = 0 to local_rows - 1 do
    for j = 0 to cols - 1 do
      chk := digest_cell ~cols !chk (lo + r) j e.(r).(j) h.(r).(j);
      nrg := !nrg + abs e.(r).(j) + abs h.(r).(j)
    done
  done;
  api.write (loc_chk p) !chk;
  api.write (loc_nrg p) !nrg;
  api.barrier ();
  if p = 0 then begin
    let checksum = ref 0 and energy = ref 0 in
    for q = 0 to procs - 1 do
      checksum := !checksum + api.read ~label (loc_chk q);
      energy := !energy + api.read ~label (loc_nrg q)
    done;
    result := Some { checksum = !checksum; energy = !energy }
  end

let launch ~spawn ~procs ?(label = Op.PRAM) params =
  if params.rows < procs then invalid_arg "Em_field.launch: more processes than rows";
  let result = ref None in
  for p = 0 to procs - 1 do
    spawn p (fun api -> worker ~params ~procs ~label result p api)
  done;
  result

let reference ~procs params =
  ignore procs;
  let { rows; cols; steps; _ } = params in
  let e = Array.init rows (fun i -> Array.init cols (initial_e ~params i)) in
  let h = Array.make_matrix rows cols 0 in
  for _step = 1 to steps do
    for i = rows - 1 downto 0 do
      for j = 0 to cols - 1 do
        let h_above = if i = 0 then 0 else h.(i - 1).(j) in
        e.(i).(j) <- e.(i).(j) + Fixed.mul c (h.(i).(j) - h_above)
      done
    done;
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        let e_below = if i = rows - 1 then 0 else e.(i + 1).(j) in
        h.(i).(j) <- h.(i).(j) + Fixed.mul c (e_below - e.(i).(j))
      done
    done
  done;
  let chk = ref 0 and nrg = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      chk := digest_cell ~cols !chk i j e.(i).(j) h.(i).(j);
      nrg := !nrg + abs e.(i).(j) + abs h.(i).(j)
    done
  done;
  { checksum = !chk; energy = !nrg }

let subscriptions ~procs loc =
  (* "e:p:j" is read by process p-1; "h:p:j" by process p+1; the final
     digests only by process 0 *)
  match String.split_on_char ':' loc with
  | [ "e"; p; _ ] -> Some [ max 0 (int_of_string p - 1) ]
  | [ "h"; p; _ ] -> Some [ min (procs - 1) (int_of_string p + 1) ]
  | [ "chk"; _ ] | [ "nrg"; _ ] -> Some [ 0 ]
  | _ -> None
