(** Electromagnetic field computation (paper Section 5.2, Figure 4).

    A 2-D grid of E-nodes and H-nodes is partitioned into row strips, one
    per process. Computation alternates phases: E values are updated from
    adjoining H values, then H values from adjoining E values, with a
    barrier after each phase ("Updates performed in a phase should be
    available in subsequent phases"). Only the strip-boundary rows are
    shared; interior rows stay process-local — the shared rows are
    exactly the "ghost copies" the paper says PRAM provides
    automatically.

    The program is PRAM-consistent (each shared row is written once per
    phase and read only in later phases), so PRAM reads preserve
    correctness (Corollary 2). *)

type params = {
  rows : int;  (** grid height; must be >= number of processes *)
  cols : int;  (** grid width *)
  steps : int;  (** number of E+H update rounds *)
  seed : int;
}

type result = {
  checksum : int;  (** order-independent digest of the final fields *)
  energy : int;  (** sum of |E| + |H| over the grid, fixed point *)
}

(** [launch ~spawn ~procs ?label params] runs the computation on any
    memory providing {!Mc_dsm.Api.t}. [label] is the read label for
    shared rows (default PRAM). The cell is filled by process 0 after
    the final barrier. *)
val launch :
  spawn:(int -> (Mc_dsm.Api.t -> unit) -> unit) ->
  procs:int ->
  ?label:Mc_history.Op.label ->
  params ->
  result option ref

(** [reference ~procs params] is the sequential execution with the same
    schedule and arithmetic. *)
val reference : procs:int -> params -> result

(** [subscriptions ~procs loc] is the reader set of each shared location
    — boundary rows are read only by the adjacent strip, digests only by
    process 0 — for the Section-6 multicast routing optimization
    ([Config.multicast]). *)
val subscriptions : procs:int -> Mc_history.Op.location -> int list option
