lib/apps/fixed.ml: Float
