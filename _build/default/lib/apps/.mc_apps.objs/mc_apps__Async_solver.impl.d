lib/apps/async_solver.ml: Array Fixed Linear_solver Mc_dsm Mc_history
