lib/apps/sparse_spd.mli:
