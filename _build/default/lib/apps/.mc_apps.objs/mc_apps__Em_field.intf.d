lib/apps/em_field.mli: Mc_dsm Mc_history
