lib/apps/linear_solver.ml: Array Fixed List Mc_dsm Mc_history Mc_util
