lib/apps/pipeline.ml: Mc_dsm Printf
