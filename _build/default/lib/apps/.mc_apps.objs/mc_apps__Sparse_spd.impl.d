lib/apps/sparse_spd.ml: Array Fixed List Mc_util
