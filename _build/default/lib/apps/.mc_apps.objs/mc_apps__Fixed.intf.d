lib/apps/fixed.mli:
