lib/apps/cholesky.mli: Mc_dsm Sparse_spd
