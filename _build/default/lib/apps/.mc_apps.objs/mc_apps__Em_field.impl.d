lib/apps/em_field.ml: Array Fixed Mc_dsm Mc_history Mc_util Printf String
