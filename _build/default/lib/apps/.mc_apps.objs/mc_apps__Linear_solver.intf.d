lib/apps/linear_solver.mli: Mc_dsm
