lib/apps/pipeline.mli: Mc_dsm
