lib/apps/cholesky.ml: Array Fixed List Mc_dsm Printf Sparse_spd
