lib/apps/async_solver.mli: Linear_solver Mc_dsm Mc_history
