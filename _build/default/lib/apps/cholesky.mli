(** Parallel sparse Cholesky factorization (paper Section 5.3, Figure 5).

    Columns are assigned to processes round-robin. Each process awaits
    its column's dependency count reaching zero, scales the column, and
    pushes updates into dependent columns. Two variants:

    - {!Lock_based} — Figure 5 verbatim: each remote-column update runs
      in a critical section guarded by a write lock [l[k]]; reads are
      causal (Theorem 1 applies).
    - {!Counter_based} — the optimization of Section 5.3: matrix entries
      and dependency counts are abstract counter objects supporting a
      commuting decrement, so no critical sections are needed; the paper
      reports this "outperforms the lock-based algorithm significantly".

    Both produce the exact fixed-point factor of the sequential
    reference (integer decrements commute). *)

type variant = Lock_based | Counter_based

val variant_to_string : variant -> string

type result = {
  l : int array array;  (** dense lower-triangular factor, fixed point *)
  max_error : int;  (** [verify] residual against the input matrix *)
}

(** [launch ~spawn ~procs ~variant problem] runs the factorization; the
    cell is filled by process 0 after the final barrier. *)
val launch :
  spawn:(int -> (Mc_dsm.Api.t -> unit) -> unit) ->
  procs:int ->
  variant:variant ->
  Sparse_spd.t ->
  result option ref
