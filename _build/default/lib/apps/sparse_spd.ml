type t = {
  n : int;
  values : int array array;
  pattern : bool array array;
  deps : int array;
  parent : int array;
}

(* Fill pattern by clique elimination: eliminating column k turns the set
   S = { i > k : L[i][k] <> 0 } into a clique. Also yields the elimination
   tree: parent(k) = min S. *)
let symbolic ~n pattern =
  let parent = Array.make n (-1) in
  for k = 0 to n - 1 do
    let s = ref [] in
    for i = n - 1 downto k + 1 do
      if pattern.(i).(k) then s := i :: !s
    done;
    (match !s with
    | [] -> ()
    | first :: _ -> parent.(k) <- first);
    List.iter
      (fun i -> List.iter (fun j -> if i >= j then pattern.(i).(j) <- true) !s)
      !s
  done;
  let deps = Array.make n 0 in
  for j = 0 to n - 1 do
    for k = 0 to j - 1 do
      if pattern.(j).(k) then deps.(j) <- deps.(j) + 1
    done
  done;
  (deps, parent)

let finish ~n values pattern =
  let deps, parent = symbolic ~n pattern in
  { n; values; pattern; deps; parent }

(* make the matrix diagonally dominant, hence SPD *)
let dominate ~n values pattern =
  for i = 0 to n - 1 do
    let row_sum = ref 0 in
    for j = 0 to n - 1 do
      if j <> i then begin
        let v =
          if j < i && pattern.(i).(j) then values.(i).(j)
          else if j > i && pattern.(j).(i) then values.(j).(i)
          else 0
        in
        row_sum := !row_sum + abs v
      end
    done;
    values.(i).(i) <- !row_sum + Fixed.of_float 2.0
  done

let generate ~seed ~n ~density =
  if density < 0. || density > 1. then invalid_arg "Sparse_spd.generate: bad density";
  let rng = Mc_util.Rng.make seed in
  let pattern = Array.make_matrix n n false in
  let values = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    pattern.(i).(i) <- true;
    for j = 0 to i - 1 do
      if Mc_util.Rng.float rng 1.0 < density then begin
        pattern.(i).(j) <- true;
        values.(i).(j) <- Fixed.of_float (Mc_util.Rng.float_in rng (-1.0) 1.0)
      end
    done
  done;
  dominate ~n values pattern;
  finish ~n values pattern

let arrow ~seed ~n ~bandwidth =
  let rng = Mc_util.Rng.make seed in
  let pattern = Array.make_matrix n n false in
  let values = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    pattern.(i).(i) <- true;
    for j = max 0 (i - bandwidth) to i - 1 do
      pattern.(i).(j) <- true;
      values.(i).(j) <- Fixed.of_float (Mc_util.Rng.float_in rng (-1.0) 1.0)
    done
  done;
  (* dense last row: the arrowhead *)
  for j = 0 to n - 2 do
    pattern.(n - 1).(j) <- true;
    if values.(n - 1).(j) = 0 then
      values.(n - 1).(j) <- Fixed.of_float (Mc_util.Rng.float_in rng (-0.5) 0.5)
  done;
  dominate ~n values pattern;
  finish ~n values pattern

let nnz t =
  let count = ref 0 in
  for i = 0 to t.n - 1 do
    for j = 0 to i do
      if t.pattern.(i).(j) then incr count
    done
  done;
  !count

let column t j =
  let rows = ref [] in
  for i = t.n - 1 downto j do
    if t.pattern.(i).(j) then rows := i :: !rows
  done;
  !rows

let factor_reference t =
  let n = t.n in
  let l = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      if t.pattern.(i).(j) then l.(i).(j) <- t.values.(i).(j)
    done
  done;
  for j = 0 to n - 1 do
    l.(j).(j) <- Fixed.sqrt l.(j).(j);
    for i = j + 1 to n - 1 do
      if t.pattern.(i).(j) then l.(i).(j) <- Fixed.div l.(i).(j) l.(j).(j)
    done;
    for k = j + 1 to n - 1 do
      if t.pattern.(k).(j) then
        for i = k to n - 1 do
          if t.pattern.(i).(j) then
            l.(i).(k) <- l.(i).(k) - Fixed.mul l.(i).(j) l.(k).(j)
        done
    done
  done;
  l

let verify t l =
  let n = t.n in
  let err = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let expected =
        if t.pattern.(i).(j) then t.values.(i).(j) else 0
      in
      let sum = ref 0 in
      for k = 0 to j do
        sum := !sum + Fixed.mul l.(i).(k) l.(j).(k)
      done;
      err := max !err (abs (!sum - expected))
    done
  done;
  !err
