module Api = Mc_dsm.Api

type variant = Lock_based | Counter_based

let variant_to_string = function
  | Lock_based -> "lock-based (Fig. 5)"
  | Counter_based -> "counter objects (Sec. 5.3)"

type result = { l : int array array; max_error : int }

let loc_l i j = Printf.sprintf "L:%d:%d" i j
let loc_count j = "count:" ^ string_of_int j
let lock_col k = "l:" ^ string_of_int k

(* columns owned by process p: round-robin assignment *)
let owned_columns ~n ~procs p =
  let rec collect j acc = if j >= n then List.rev acc else collect (j + procs) (j :: acc) in
  collect p []

let init_columns (m : Sparse_spd.t) ~variant p cols (api : Api.t) =
  let install loc v =
    match variant with
    | Lock_based -> api.write loc v
    | Counter_based -> api.init_counter loc v
  in
  List.iter
    (fun j ->
      List.iter (fun i -> install (loc_l i j) m.Sparse_spd.values.(i).(j)) (Sparse_spd.column m j);
      install (loc_count j) m.Sparse_spd.deps.(j))
    cols;
  ignore p

(* rows of column j strictly below the diagonal *)
let below m j = List.filter (fun i -> i > j) (Sparse_spd.column m j)

let process_column_locked (m : Sparse_spd.t) j (api : Api.t) =
  api.await (loc_count j) 0;
  let diag = Fixed.sqrt (api.read (loc_l j j)) in
  api.write (loc_l j j) diag;
  let rows = below m j in
  let scaled = List.map (fun i -> (i, Fixed.div (api.read (loc_l i j)) diag)) rows in
  List.iter (fun (i, v) -> api.write (loc_l i j) v) scaled;
  api.compute (float_of_int (List.length rows));
  List.iter
    (fun (k, vk) ->
      api.write_lock (lock_col k);
      List.iter
        (fun (i, vi) ->
          if i >= k then begin
            let cur = api.read (loc_l i k) in
            api.write (loc_l i k) (cur - Fixed.mul vi vk)
          end)
        scaled;
      let c = api.read (loc_count k) in
      api.write (loc_count k) (c - 1);
      api.write_unlock (lock_col k))
    scaled

let process_column_counters (m : Sparse_spd.t) j (api : Api.t) =
  api.await (loc_count j) 0;
  let diag = Fixed.sqrt (api.read (loc_l j j)) in
  api.write (loc_l j j) diag;
  let rows = below m j in
  let scaled = List.map (fun i -> (i, Fixed.div (api.read (loc_l i j)) diag)) rows in
  List.iter (fun (i, v) -> api.write (loc_l i j) v) scaled;
  api.compute (float_of_int (List.length rows));
  List.iter
    (fun (k, vk) ->
      List.iter
        (fun (i, vi) ->
          if i >= k then begin
            let amount = Fixed.mul vi vk in
            (* zero-amount decrements are no-ops; skipping them also keeps
               recorded write values unique *)
            if amount <> 0 then api.decrement (loc_l i k) ~amount
          end)
        scaled;
      api.decrement (loc_count k) ~amount:1)
    scaled

let gather (m : Sparse_spd.t) (api : Api.t) =
  let n = m.Sparse_spd.n in
  let l = Array.make_matrix n n 0 in
  for j = 0 to n - 1 do
    List.iter (fun i -> l.(i).(j) <- api.read (loc_l i j)) (Sparse_spd.column m j)
  done;
  l

let worker (m : Sparse_spd.t) ~procs ~variant result p (api : Api.t) =
  let cols = owned_columns ~n:m.Sparse_spd.n ~procs p in
  init_columns m ~variant p cols api;
  api.barrier ();
  let process =
    match variant with
    | Lock_based -> process_column_locked
    | Counter_based -> process_column_counters
  in
  List.iter (fun j -> process m j api) cols;
  api.barrier ();
  if p = 0 then begin
    let l = gather m api in
    result := Some { l; max_error = Sparse_spd.verify m l }
  end

let launch ~spawn ~procs ~variant (m : Sparse_spd.t) =
  if procs < 1 then invalid_arg "Cholesky.launch: need at least one process";
  let result = ref None in
  for p = 0 to procs - 1 do
    spawn p (fun api -> worker m ~procs ~variant result p api)
  done;
  result
