(** Asynchronous relaxation solver (paper Section 7: "Equivalence to a
    sequentially consistent computation may not always be necessary. For
    example, some asynchronous relaxation algorithms such as Gauss-Seidel
    iteration converge even with PRAM").

    Workers sweep their rows continuously with no barriers, handshakes or
    locks — every read is a plain PRAM read of whatever estimate has
    reached the local replica, and own-row updates are visible
    immediately (Gauss-Seidel within a block, chaotic relaxation across
    blocks). A coordinator polls the estimate and raises a [done] flag
    once it stops moving. The execution is {e not} equivalent to any
    sequentially consistent run, yet for diagonally dominant systems the
    iteration still converges to the solution (Chazan-Miranker). *)

type result = {
  x : int array;  (** final estimate, fixed point *)
  sweeps : int array;  (** sweeps completed per worker — typically uneven *)
  residual : int;  (** max-norm residual of the returned estimate *)
  converged : bool;
}

(** [launch ~spawn ~procs ?label ?max_sweeps ?tol problem] runs process 0
    as the convergence monitor and processes 1..procs-1 as sweep workers.
    [label] is the read label (default PRAM). *)
val launch :
  spawn:(int -> (Mc_dsm.Api.t -> unit) -> unit) ->
  procs:int ->
  ?label:Mc_history.Op.label ->
  ?max_sweeps:int ->
  ?tol:int ->
  Linear_solver.Problem.t ->
  result option ref

(** [solution problem] is the converged synchronous solution, for
    accuracy comparison (async runs match it within tolerance, not
    exactly). *)
val solution : ?tol:int -> Linear_solver.Problem.t -> int array
