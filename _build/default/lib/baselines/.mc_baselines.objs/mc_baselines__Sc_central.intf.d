lib/baselines/sc_central.mli: Mc_dsm Mc_history Mc_net Mc_sim Mc_util
