lib/baselines/sc_central.ml: Array Hashtbl List Mc_dsm Mc_history Mc_net Mc_sim Mc_util Option Printf String
