lib/baselines/sc_invalidate.mli: Mc_dsm Mc_history Mc_net Mc_sim Mc_util
