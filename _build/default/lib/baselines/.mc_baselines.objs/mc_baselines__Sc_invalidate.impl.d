lib/baselines/sc_invalidate.ml: Array Hashtbl List Mc_dsm Mc_history Mc_net Mc_sim Mc_util Printf String
