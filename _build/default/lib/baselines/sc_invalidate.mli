(** Sequentially consistent baseline: a directory-based write-invalidate
    protocol (MSI-style), the style of DSM coherence popularized by Li
    and Hudak's shared virtual memory and assumed by the hardware-DSM
    systems the paper cites.

    Every location has a home node ([hash loc mod procs]) holding its
    directory entry: the current owner (modified copy) or the set of
    sharers. Reads hit locally on a valid cached copy; a read miss
    fetches through the home (downgrading the owner to shared); a write
    acquires exclusive ownership by invalidating all other copies.
    Transactions on a location serialize at its home and clients block on
    each operation, so the memory is linearizable, hence sequentially
    consistent. Reads that hit in the cache are fast — the contrast with
    {!Sc_central} shows what caching buys, and the contrast with the
    mixed runtime shows what weak consistency buys on write-heavy
    sharing.

    Synchronization (locks, barriers, awaits) uses a central manager at
    node 0; awaits poll their location through the cache (invalidations
    make the next poll fetch fresh data). *)

type t

val create :
  Mc_sim.Engine.t ->
  ?latency:Mc_net.Latency.t ->
  ?record:bool ->
  ?op_cost:float ->
  ?poll_interval:float ->
  ?send_cost:float ->
  ?byte_cost:float ->
  procs:int ->
  unit ->
  t

val spawn : t -> int -> (Mc_dsm.Api.t -> unit) -> unit
val run : t -> float
val history : t -> Mc_history.History.t

(** [peek t loc] reads the coherent value of [loc] (after [run]): the
    owner's copy if one exists, the home memory otherwise. *)
val peek : t -> Mc_history.Op.location -> int

val messages_sent : t -> int
val bytes_sent : t -> int
val wait_summaries : t -> (string * Mc_util.Stats.Summary.t) list

(** [cache_hits t], [cache_misses t]: read path statistics. *)
val cache_hits : t -> int

val cache_misses : t -> int

(**/**)

val debug : bool ref
(** internal protocol tracing, for debugging *)
