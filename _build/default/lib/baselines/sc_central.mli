(** Sequentially consistent baseline: a central memory server.

    All memory and synchronization state lives on a dedicated server node
    (node id [procs]); every operation is a blocking request/reply round
    trip. Each client has at most one outstanding operation and every
    location is serialized at the server, so the memory is linearizable
    and therefore sequentially consistent — at the cost of the access
    latency the paper's introduction attributes to strong consistency.

    Exposes the same {!Mc_dsm.Api.t} operations as the mixed runtime so
    applications run unchanged. *)

type t

val create :
  Mc_sim.Engine.t ->
  ?latency:Mc_net.Latency.t ->
  ?record:bool ->
  ?op_cost:float ->
  ?send_cost:float ->
  ?byte_cost:float ->
  procs:int ->
  unit ->
  t

(** [spawn t i f] spawns client process [i]. *)
val spawn : t -> int -> (Mc_dsm.Api.t -> unit) -> unit

(** [run t] runs the simulation to completion. *)
val run : t -> float

(** [history t] is the recorded history (requires [record:true]). *)
val history : t -> Mc_history.History.t

(** [peek t loc] reads the server's memory directly (after [run]). *)
val peek : t -> Mc_history.Op.location -> int

val messages_sent : t -> int
val bytes_sent : t -> int

(** [wait_summaries t] gives blocking time per operation kind. *)
val wait_summaries : t -> (string * Mc_util.Stats.Summary.t) list
