(** Operations of the mixed-consistency model (paper, Section 3).

    Processes issue memory operations (reads labelled PRAM or Causal,
    writes, and decrements on abstract counter objects, Section 5.3) and
    synchronization operations (read/write locks, barriers, awaits). Each
    operation execution is a pair of events: an invocation issued by the
    process and a matching response issued by the system. *)

type location = string
type lock_name = string
type value = int

(** Consistency label carried by each read (Definition 4, plus the
    group generalization sketched in Section 3.2: "the definition can be
    easily generalized to maintain causality across an arbitrary group of
    processes; PRAM reads and causal reads form the two end points of the
    spectrum"). A [Group] read maintains causality across the listed
    processes; [Group [i]] behaves like PRAM for process [i], and a group
    of all processes behaves like Causal. *)
type label = PRAM | Causal | Group of int list

type kind =
  | Read of { loc : location; label : label; value : value }
      (** [value] is the value returned by the memory system. *)
  | Write of { loc : location; value : value }
  | Decrement of { loc : location; amount : value; observed : value }
      (** Abstract counter-object operation (Section 5.3): atomically
          subtracts [amount]; [observed] is the pre-decrement value at the
          issuing replica. Commutes with other decrements. *)
  | Read_lock of lock_name
  | Read_unlock of lock_name
  | Write_lock of lock_name
  | Write_unlock of lock_name
  | Barrier of int  (** episode number: the k-th barrier in the history *)
  | Barrier_group of { episode : int; members : int list }
      (** a barrier over a subset of processes (Section 3.1.2: "a barrier
          can also be defined for a subset of processes by restricting
          the range of the universal quantification to the subset") *)
  | Await of { loc : location; value : value }
      (** [await (x = v)]: blocks until location [loc] holds [value]. *)

type t = {
  id : int;  (** index of the operation in its history *)
  proc : int;  (** issuing process *)
  kind : kind;
  inv_seq : int;  (** process-local sequence number of the invocation event *)
  resp_seq : int;  (** process-local sequence number of the response event *)
  sync_seq : int;
      (** manager-assigned global grant order for lock operations
          (monotone per lock object); [-1] for other operations *)
}

(** [writes_value op] is [Some (loc, v)] when [op] installs value [v] at
    [loc]: writes, and decrements (which install [observed - amount]). *)
val writes_value : t -> (location * value) option

(** [reads_value op] is [Some (loc, v)] when [op] observes value [v] at
    [loc]: reads, awaits, and decrements (which observe [observed]). *)
val reads_value : t -> (location * value) option

(** [is_memory_read op] is true exactly for [Read] operations — the ones
    constrained by Definitions 2 and 3. *)
val is_memory_read : t -> bool

val is_write_like : t -> bool
(** Writes and decrements. *)

val is_sync : t -> bool
(** Lock, unlock, barrier and await operations. *)

val lock_of : t -> lock_name option
(** The lock object touched, for lock/unlock operations. *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
