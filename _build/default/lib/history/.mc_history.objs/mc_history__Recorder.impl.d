lib/history/recorder.ml: Array Hashtbl History List Op Printf
