lib/history/render.mli: History
