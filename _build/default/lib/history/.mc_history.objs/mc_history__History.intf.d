lib/history/history.mli: Format Mc_util Op
