lib/history/dsl.ml: List Op Recorder
