lib/history/op.ml: Format List String
