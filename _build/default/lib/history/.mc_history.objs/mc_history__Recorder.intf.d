lib/history/recorder.mli: History Op
