lib/history/dsl.mli: History Op
