lib/history/history.ml: Array Format Hashtbl List Mc_util Op Option Printf
