lib/history/render.ml: Array Buffer Format Fun History List Mc_util Op Printf String
