module Relation = Mc_util.Relation

let column_width = 22

(* The DSM runtime records written values as unique tags of the form
   ((writer + 1) << 40) | counter; render those compactly as p<w>#<k>
   so diagrams stay readable. *)
let pp_value v =
  if v >= 1 lsl 40 then
    Printf.sprintf "p%d#%d" ((v lsr 40) - 1) (v land ((1 lsl 40) - 1))
  else string_of_int v

let op_label (kind : Op.kind) =
  match kind with
  | Op.Read { loc; label; value } ->
    let l =
      match label with
      | Op.PRAM -> "p"
      | Op.Causal -> "c"
      | Op.Group members ->
        "g{" ^ String.concat "," (List.map string_of_int members) ^ "}"
    in
    Printf.sprintf "r%s(%s)%s" l loc (pp_value value)
  | Op.Write { loc; value } -> Printf.sprintf "w(%s)%s" loc (pp_value value)
  | Op.Await { loc; value } -> Printf.sprintf "await(%s=%s)" loc (pp_value value)
  | kind -> Format.asprintf "%a" Op.pp_kind kind

let space_time h =
  let procs = History.procs h in
  let buf = Buffer.create 1024 in
  let pad s =
    let n = String.length s in
    if n >= column_width then String.sub s 0 column_width
    else s ^ String.make (column_width - n) ' '
  in
  for p = 0 to procs - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "p%d" p))
  done;
  Buffer.add_char buf '\n';
  for _ = 0 to procs - 1 do
    Buffer.add_string buf (pad (String.make (column_width - 2) '-'))
  done;
  Buffer.add_char buf '\n';
  (* one output row per operation, ordered by a topological order of the
     causality relation so the vertical axis respects causality *)
  let order =
    match History.causality_is_acyclic h with
    | true ->
      let base =
        Relation.union (History.program_order h)
          (Relation.union (History.reads_from h) (History.sync_order h))
      in
      Relation.topological_order base
    | false ->
      List.init (History.length h) Fun.id
  in
  List.iter
    (fun id ->
      let op = History.op h id in
      for p = 0 to procs - 1 do
        if p = op.Op.proc then Buffer.add_string buf (pad (op_label op.Op.kind))
        else Buffer.add_string buf (pad "")
      done;
      Buffer.add_char buf '\n')
    order;
  Buffer.contents buf

let edge_kind h a b =
  let mem rel = Relation.mem rel a b in
  if mem (History.program_order h) then "po"
  else if mem (History.reads_from h) then "rf"
  else if mem (History.lock_order h) then "lock"
  else if mem (History.barrier_order h) then "bar"
  else if mem (History.await_order h) then "await"
  else "causal"

let dot h =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph history {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for p = 0 to History.procs h - 1 do
    Buffer.add_string buf (Printf.sprintf "  subgraph cluster_p%d {\n    label=\"p%d\";\n" p p);
    Array.iter
      (fun (o : Op.t) ->
        if o.proc = p then
          Buffer.add_string buf
            (Printf.sprintf "    n%d [label=\"%s\"];\n" o.id
               (String.map (fun c -> if c = '"' then '\'' else c) (op_label o.kind))))
      (History.ops h);
    Buffer.add_string buf "  }\n"
  done;
  (* draw the transitive reduction so the picture stays readable *)
  let base =
    Relation.union (History.program_order h)
      (Relation.union (History.reads_from h) (History.sync_order h))
  in
  let edges =
    if Relation.is_acyclic base then Relation.transitive_reduction base else base
  in
  Relation.fold edges
    (fun () a b ->
      let kind = edge_kind h a b in
      let style =
        match kind with
        | "po" -> "color=black"
        | "rf" -> "color=blue, label=\"rf\""
        | "lock" -> "color=red, label=\"lock\""
        | "bar" -> "color=darkgreen, label=\"bar\""
        | "await" -> "color=purple, label=\"await\""
        | _ -> "style=dashed"
      in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d [%s];\n" a b style))
    ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary h =
  let buf = Buffer.create 256 in
  let kinds = Mc_util.Stats.Counters.create () in
  let per_proc = Array.make (History.procs h) 0 in
  Array.iter
    (fun (o : Op.t) ->
      per_proc.(o.proc) <- per_proc.(o.proc) + 1;
      let name =
        match o.kind with
        | Op.Read _ -> "read"
        | Op.Write _ -> "write"
        | Op.Decrement _ -> "decrement"
        | Op.Read_lock _ | Op.Write_lock _ -> "lock"
        | Op.Read_unlock _ | Op.Write_unlock _ -> "unlock"
        | Op.Barrier _ | Op.Barrier_group _ -> "barrier"
        | Op.Await _ -> "await"
      in
      Mc_util.Stats.Counters.incr kinds name)
    (History.ops h);
  Buffer.add_string buf
    (Printf.sprintf "%d operations over %d processes\n" (History.length h)
       (History.procs h));
  List.iter
    (fun (name, k) -> Buffer.add_string buf (Printf.sprintf "  %-10s %d\n" name k))
    (Mc_util.Stats.Counters.to_list kinds);
  Array.iteri
    (fun p k -> Buffer.add_string buf (Printf.sprintf "  p%-9d %d\n" p k))
    per_proc;
  Buffer.add_string buf
    (Printf.sprintf "  causality edges: %d (base %d)\n"
       (Relation.cardinal (History.causality h))
       (Relation.cardinal
          (Relation.union (History.program_order h)
             (Relation.union (History.reads_from h) (History.sync_order h)))));
  Buffer.contents buf
