type token = { proc : int; inv_seq : int }

type t = {
  n_procs : int;
  mutable ops_rev : Op.t list;
  mutable count : int;
  event_counters : int array;
  grant_counters : (string, int ref) Hashtbl.t;
}

let create ~procs =
  if procs <= 0 then invalid_arg "Recorder.create: need at least one process";
  {
    n_procs = procs;
    ops_rev = [];
    count = 0;
    event_counters = Array.make procs 0;
    grant_counters = Hashtbl.create 8;
  }

let procs t = t.n_procs

let check_proc t proc =
  if proc < 0 || proc >= t.n_procs then
    invalid_arg (Printf.sprintf "Recorder: process %d out of range" proc)

let next_event t proc =
  let c = t.event_counters.(proc) in
  t.event_counters.(proc) <- c + 1;
  c

let add_op t ~proc ~inv_seq ~resp_seq ~sync_seq kind =
  let id = t.count in
  t.count <- id + 1;
  let op : Op.t = { id; proc; kind; inv_seq; resp_seq; sync_seq } in
  t.ops_rev <- op :: t.ops_rev;
  id

let record t ~proc ?(sync_seq = -1) kind =
  check_proc t proc;
  let inv_seq = next_event t proc in
  let resp_seq = next_event t proc in
  add_op t ~proc ~inv_seq ~resp_seq ~sync_seq kind

let start t ~proc =
  check_proc t proc;
  { proc; inv_seq = next_event t proc }

let finish t token ?(sync_seq = -1) kind =
  let resp_seq = next_event t token.proc in
  add_op t ~proc:token.proc ~inv_seq:token.inv_seq ~resp_seq ~sync_seq kind

let grant_seq t lock =
  match Hashtbl.find_opt t.grant_counters lock with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.add t.grant_counters lock (ref 0);
    0

let op_count t = t.count

let history t =
  let arr = Array.of_list (List.rev t.ops_rev) in
  History.create ~procs:t.n_procs arr
