(** Rendering of histories for humans: ASCII space-time diagrams and
    Graphviz exports of the causality relation. *)

(** [space_time h] lays the history out as one column per process, rows
    in invocation order, e.g.:

    {v
    p0              p1              p2
    --------------  --------------  --------------
    w(x)1
                    rc(x)1
                                    rp(x)0
    v} *)
val space_time : History.t -> string

(** [dot h] is a Graphviz digraph of the causality relation's transitive
    reduction: nodes are operations (clustered per process), edges are
    labelled by their source relation (program order, reads-from, or
    synchronization). *)
val dot : History.t -> string

(** [summary h] is a short textual profile: op counts by kind, per
    process, plus relation sizes. *)
val summary : History.t -> string
