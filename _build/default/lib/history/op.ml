type location = string
type lock_name = string
type value = int
type label = PRAM | Causal | Group of int list

type kind =
  | Read of { loc : location; label : label; value : value }
  | Write of { loc : location; value : value }
  | Decrement of { loc : location; amount : value; observed : value }
  | Read_lock of lock_name
  | Read_unlock of lock_name
  | Write_lock of lock_name
  | Write_unlock of lock_name
  | Barrier of int
  | Barrier_group of { episode : int; members : int list }
  | Await of { loc : location; value : value }

type t = {
  id : int;
  proc : int;
  kind : kind;
  inv_seq : int;
  resp_seq : int;
  sync_seq : int;
}

let writes_value op =
  match op.kind with
  | Write { loc; value } -> Some (loc, value)
  | Decrement { loc; amount; observed } -> Some (loc, observed - amount)
  | Read _ | Read_lock _ | Read_unlock _ | Write_lock _ | Write_unlock _
  | Barrier _ | Barrier_group _ | Await _ ->
    None

let reads_value op =
  match op.kind with
  | Read { loc; value; _ } -> Some (loc, value)
  | Await { loc; value } -> Some (loc, value)
  | Decrement { loc; observed; _ } -> Some (loc, observed)
  | Write _ | Read_lock _ | Read_unlock _ | Write_lock _ | Write_unlock _
  | Barrier _ | Barrier_group _ ->
    None

let is_memory_read op = match op.kind with Read _ -> true | _ -> false

let is_write_like op =
  match op.kind with Write _ | Decrement _ -> true | _ -> false

let is_sync op =
  match op.kind with
  | Read_lock _ | Read_unlock _ | Write_lock _ | Write_unlock _ | Barrier _
  | Barrier_group _ | Await _ ->
    true
  | Read _ | Write _ | Decrement _ -> false

let lock_of op =
  match op.kind with
  | Read_lock l | Read_unlock l | Write_lock l | Write_unlock l -> Some l
  | Read _ | Write _ | Decrement _ | Barrier _ | Barrier_group _ | Await _ -> None

let pp_kind fmt = function
  | Read { loc; label; value } ->
    Format.fprintf fmt "r%s(%s)%d"
      (match label with
      | PRAM -> "p"
      | Causal -> "c"
      | Group members ->
        "g{" ^ String.concat "," (List.map string_of_int members) ^ "}")
      loc value
  | Write { loc; value } -> Format.fprintf fmt "w(%s)%d" loc value
  | Decrement { loc; amount; observed } ->
    Format.fprintf fmt "dec(%s)%d[%d->%d]" loc amount observed (observed - amount)
  | Read_lock l -> Format.fprintf fmt "rl(%s)" l
  | Read_unlock l -> Format.fprintf fmt "ru(%s)" l
  | Write_lock l -> Format.fprintf fmt "wl(%s)" l
  | Write_unlock l -> Format.fprintf fmt "wu(%s)" l
  | Barrier k -> Format.fprintf fmt "bar(%d)" k
  | Barrier_group { episode; members } ->
    Format.fprintf fmt "bar(%d|{%s})" episode
      (String.concat "," (List.map string_of_int members))
  | Await { loc; value } -> Format.fprintf fmt "await(%s=%d)" loc value

let pp fmt op = Format.fprintf fmt "p%d:%a#%d" op.proc pp_kind op.kind op.id
let to_string op = Format.asprintf "%a" pp op
