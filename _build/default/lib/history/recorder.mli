(** Incremental history recording for runtime systems.

    The DSM runtime records every operation it executes through a
    recorder; the result can then be checked offline against the formal
    consistency definitions. Event sequence numbers are process-local and
    monotone, so operations recorded sequentially by one fiber are totally
    ordered in program order, while [start]/[finish] allow overlapping
    (non-blocking) operations. *)

type t

val create : procs:int -> t

val procs : t -> int

(** [record t ~proc ?sync_seq kind] records a complete operation whose
    invocation and response are adjacent events. Returns the op id. *)
val record : t -> proc:int -> ?sync_seq:int -> Op.kind -> int

(** [start t ~proc] marks an invocation event and returns a token. *)
type token

val start : t -> proc:int -> token

(** [finish t token ?sync_seq kind] records the response for a started
    operation. Returns the op id. *)
val finish : t -> token -> ?sync_seq:int -> Op.kind -> int

(** [grant_seq t lock] returns the next grant-order number for the named
    lock object (used by lock managers to stamp lock/unlock operations). *)
val grant_seq : t -> string -> int

(** [op_count t] is the number of operations recorded so far. *)
val op_count : t -> int

(** [history t] snapshots the recorded operations into a history. *)
val history : t -> History.t
